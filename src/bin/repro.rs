//! `repro` — regenerate every figure and statistic of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--scale test|full|large|planet] [--seed N] [--jobs N]
//!       [--timing] [--faults off|light|heavy] [--keep-going]
//!       [--snapshot PATH] [--checkpoint DIR] [--resume DIR] [--shard I/N]
//! repro propagate [--scale ...] [--seed N] [--jobs N] [--snapshot PATH]
//!       [--origins K] [--prefixes K] [--csv DIR] [--timing]
//!       [--timing-json PATH]
//! repro merge SHARD_DIR... [--csv DIR] [--report]
//! repro orchestrate N [--dir DIR] [--scale ...] [--seed N] [--csv DIR]
//!       [--chaos off|light|heavy] [--hang-timeout SECS] [--timing-json PATH]
//! repro serve --dir DIR [--windows N] [--epoch K] [--epsilon E]
//!       [--mem-limit BYTES] [--epoch-deadline SECS] [--scale ...] [--seed N]
//!       [--jobs N] [--faults ...] [--csv DIR] [--chaos] [--timing]
//!       [--timing-json PATH]
//!
//! EXPERIMENT: all (default) | fig1 | fig2 | s311 | fig3 | fig4 | fig5 |
//!             calib | goodput | xpeer | xgroom | xsites | xonenet | xsplit |
//!             audit
//! ```
//!
//! `repro propagate` is the planet-tier propagation smoke: it builds the
//! selected world (a generated preset, or a real AS-relationship snapshot
//! via `--snapshot`), fully propagates routes from `--origins K` eyeball
//! ASes sharded across `--jobs` workers, samples every table for
//! valley-freeness (exit 1 on violation), reports the interned-path RIB
//! memory against the naive per-AS `Vec<AsId>` encoding, and runs a
//! bounded spray slice over the first `--prefixes K` client prefixes.
//! Stdout and `--csv` exports are byte-identical for every `--jobs` value.
//!
//! `--snapshot PATH` (main campaign and `propagate`) replaces the
//! generated topology with one built from a CAIDA-style AS-relationship
//! snapshot (`<a>|<b>|-1` provider→customer, `<a>|<b>|0` peer links);
//! provider, workload, and congestion layers are grown on top of it
//! exactly as for a generated world. An unreadable or malformed snapshot
//! is a usage error (exit 2).
//!
//! Exit codes: 0 = every selected experiment succeeded; 1 = a runtime
//! failure (an experiment errored or panicked — with `--keep-going` the
//! survivors still print — an `audit` rule violated, or an orchestrated
//! shard exhausted its restarts); 2 = usage error (bad flag value, unknown
//! experiment, conflicting flags, stale checkpoint); 130 = interrupted
//! (SIGINT/SIGTERM drain — resumable when `--checkpoint` was set; an
//! orchestrated run kills its children and is resumable the same way).
//!
//! `repro orchestrate N` is the self-healing way to run a sharded
//! campaign: it spawns the N shard runs as child processes, watches each
//! child's heartbeat file (`heartbeat.bbhb`, progress counters rewritten
//! atomically during the run), and classifies failures as crashes (nonzero
//! exit), hangs (heartbeat content stale past `--hang-timeout`), or fatal
//! usage errors (exit 2, never retried). Crashed and hung shards are
//! restarted with bounded, seed-keyed backoff; every restart resumes from
//! that shard's own checkpoint — torn manifests are salvaged to their
//! valid prefix first — so the auto-invoked merge at the end is
//! byte-identical to an unsharded run no matter how many workers died.
//! `--chaos light|heavy` turns on a deterministic process-level fault
//! injector (children crashed, stalled, and one manifest torn, all keyed
//! on the seed) so the recovery machinery can be exercised reproducibly.
//!
//! `repro serve` is the streaming (daemon) shape of the §3.1 spray
//! campaign: it advances measurement windows on the simulated clock in
//! epochs of `--epoch K` windows, and at every epoch boundary flushes its
//! entire accumulated state to a versioned `snapshot.bbsn` file (atomic
//! temp-file + fsync + rename + dir-fsync), so a SIGKILL at any instant
//! costs at most one epoch of (deterministically resampled) work and a
//! restart with the same `--dir` resumes to *byte-identical* eventual
//! output. `--epsilon ε > 0` switches from exact row retention to
//! bounded-memory mergeable quantile sketches per ⟨PoP, prefix⟩ group
//! (O(1) memory per key no matter how many windows stream through);
//! `--mem-limit BYTES` arms a resource governor that coarsens every
//! sketch one level per round — halving memory, doubling ε — whenever the
//! counter-based resident accounting crosses the limit, so the daemon
//! degrades resolution instead of growing toward an OOM kill. Snapshot
//! resume is keyed (seed, scale, faults, ε, epoch size, CSV, code
//! schema); a mismatched snapshot is rejected (exit 2), never silently
//! reused. A per-epoch watchdog (`--epoch-deadline`) counts and reports
//! overruns without ever intervening — wall-clock never shapes output
//! bytes.
//!
//! `repro audit` builds the same shared worlds and studies as the figures
//! and sweeps them through `bb-audit`'s invariant rules (valley-free
//! paths, speed-of-light RTT bounds, timeout censoring, CDF monotonicity,
//! weight conservation, coverage accounting, churn-interval shape,
//! sketch quantile-error bounds at epoch boundaries) plus
//! four metamorphic relations on `Scale::Test` slices (faults-off
//! equivalence, jobs independence, ablation directionality, shard
//! independence).
//! `BB_AUDIT_VIOLATE=<rule>` injects a corrupt item into that rule's input
//! stream so CI can prove each rule fires.
//!
//! Experiments run concurrently on up to `--jobs` workers, but stdout is
//! assembled in a fixed order from per-experiment buffers, and every
//! random draw is keyed on `(seed, item)` rather than thread schedule —
//! so output is byte-identical for every `--jobs` value, including 1.
//! Worlds and studies shared by several experiments (the Facebook spray
//! campaign feeds fig1/fig2/s311/xfabric; the Microsoft world feeds
//! fig3/fig4 and five extensions) are built once and memoized.
//!
//! Experiments run *supervised* (`bb_exec::supervisor`): a panicked or
//! failed experiment is retried up to twice with deterministic seed-keyed
//! backoff under a campaign-wide retry budget. With `--checkpoint DIR`,
//! every completed experiment is flushed to a versioned `checkpoint.bbck`
//! manifest (atomic temp-file+rename), and `--resume DIR` replays
//! completed units byte-identically instead of recomputing them. SIGINT
//! and SIGTERM trigger a graceful drain: in-flight experiments finish,
//! the checkpoint is flushed, and the run exits 130 with an
//! `=== INTERRUPTED (resumable) ===` block on stderr.
//!
//! `--shard I/N` splits the selected campaign across processes: shard I
//! runs the contiguous slice `[I·n/N, (I+1)·n/N)` of the experiment list,
//! prints nothing on stdout, and writes its units into the standard
//! checkpoint manifest (`--checkpoint` is therefore required). Every shard
//! of one campaign carries an *identical* campaign key naming the full
//! experiment list, so `repro merge DIR...` can verify the shards belong
//! together, that they cover every experiment, and that duplicated units
//! agree byte-for-byte — then it reassembles stdout (and `--csv` exports)
//! byte-identical to the unsharded run. Any mismatch is a usage error
//! (exit 2), never a silent partial merge.

use beating_bgp::cdn::EgressController;
use beating_bgp::core::ext::{
    availability, ecs, fabric, grooming, hybrid, peering_reduction, single_network, site_count,
    split_tcp,
};
use beating_bgp::core::checkpoint::{CampaignKey, Checkpoint, Heartbeat, UnitResult};
use beating_bgp::core::{calibration, study_anycast, study_egress, study_tiers};
use beating_bgp::core::{BbResult, Scale, Scenario, ScenarioConfig};
use beating_bgp::exec::supervisor::{self, SupervisionReport};
use beating_bgp::exec::timing;
use beating_bgp::netsim::FaultLevel;
use beating_bgp::measure::{BeaconConfig, ProbeConfig, SprayConfig};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Names of every experiment in `repro all`, in output order. Must match
/// the `experiments` vec in `main` (debug-asserted there); `run_orchestrate`
/// slices this list to plan shard chaos without building the closures.
const EXPERIMENT_NAMES: [&str; 18] = [
    "calib", "fig1", "fig2", "s311", "fig3", "fig4", "fig5", "goodput", "xonenet", "xpeer",
    "xgroom", "xsites", "xecs", "xavail", "xhybrid", "xfabric", "xablate", "xsplit",
];

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    csv_dir: Option<std::path::PathBuf>,
    /// Worker count for parallel sections; 0 = available cores.
    jobs: usize,
    timing: bool,
    /// Write a structured perf report (phases, counters, cache stats) here.
    timing_json: Option<std::path::PathBuf>,
    /// Fault-injection level for the measurement pipelines.
    faults: FaultLevel,
    /// Keep running surviving experiments when one fails or panics.
    keep_going: bool,
    /// Flush a checkpoint manifest here after every completed experiment.
    checkpoint: Option<std::path::PathBuf>,
    /// Resume from the checkpoint manifest in this directory (implies
    /// checkpointing back to the same directory).
    resume: Option<std::path::PathBuf>,
    /// `(index, count)` from `--shard I/N`: run only slice I of the
    /// selected experiments, suppress stdout, checkpoint the units.
    shard: Option<(usize, usize)>,
    /// Build every world from this CAIDA-style AS-relationship snapshot
    /// instead of the generated topology.
    snapshot: Option<String>,
}

/// Set by the SIGINT/SIGTERM handlers; the supervisor's cancel hook reads
/// it before claiming each experiment, turning a kill into a graceful
/// drain: in-flight experiments finish, nothing new starts.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_drain() {
    extern "C" fn on_signal(_sig: i32) {
        INTERRUPTED.store(true, Ordering::SeqCst);
    }
    // `signal(2)` via the libc std already links — no new dependency. The
    // handler only stores to an AtomicBool (async-signal-safe).
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_drain() {}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut scale = Scale::Full;
    let mut seed = 42u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut jobs = 0usize;
    let mut timing = false;
    let mut timing_json: Option<std::path::PathBuf> = None;
    let mut faults = FaultLevel::Off;
    let mut keep_going = false;
    let mut checkpoint: Option<std::path::PathBuf> = None;
    let mut resume: Option<std::path::PathBuf> = None;
    let mut shard: Option<(usize, usize)> = None;
    let mut snapshot: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    Some("large") => Scale::Large,
                    Some("planet") => Scale::Planet,
                    other => {
                        eprintln!("unknown scale {other:?}; use test|full|large|planet");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        std::process::exit(2);
                    });
            }
            "--jobs" => {
                i += 1;
                jobs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--jobs needs a number");
                        std::process::exit(2);
                    });
            }
            "--timing" => timing = true,
            "--faults" => {
                i += 1;
                faults = match argv.get(i).map(String::as_str).unwrap_or("").parse() {
                    Ok(level) => level,
                    Err(e) => {
                        eprintln!("--faults: {e}");
                        std::process::exit(2);
                    }
                };
            }
            "--keep-going" => keep_going = true,
            "--timing-json" => {
                i += 1;
                timing_json = Some(std::path::PathBuf::from(
                    argv.get(i).cloned().unwrap_or_else(|| {
                        eprintln!("--timing-json needs a file path");
                        std::process::exit(2);
                    }),
                ));
            }
            "--csv" => {
                i += 1;
                let dir = std::path::PathBuf::from(argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--csv: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                csv_dir = Some(dir);
            }
            "--snapshot" => {
                i += 1;
                snapshot = Some(argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--snapshot needs a file path");
                    std::process::exit(2);
                }));
            }
            "--checkpoint" => {
                i += 1;
                checkpoint = Some(std::path::PathBuf::from(
                    argv.get(i).cloned().unwrap_or_else(|| {
                        eprintln!("--checkpoint needs a directory");
                        std::process::exit(2);
                    }),
                ));
            }
            "--resume" => {
                i += 1;
                resume = Some(std::path::PathBuf::from(argv.get(i).cloned().unwrap_or_else(
                    || {
                        eprintln!("--resume needs a directory");
                        std::process::exit(2);
                    },
                )));
            }
            "--shard" => {
                i += 1;
                let spec = argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--shard needs I/N (e.g. 0/3)");
                    std::process::exit(2);
                });
                shard = match spec.split_once('/') {
                    Some((a, b)) => match (a.parse::<usize>(), b.parse::<usize>()) {
                        (Ok(idx), Ok(n)) if n >= 1 && idx < n => Some((idx, n)),
                        _ => {
                            eprintln!("--shard: bad spec {spec:?}; need I/N with 0 <= I < N");
                            std::process::exit(2);
                        }
                    },
                    None => {
                        eprintln!("--shard: bad spec {spec:?}; need I/N with 0 <= I < N");
                        std::process::exit(2);
                    }
                };
            }
            "--help" | "-h" => {
                println!(
                    "repro [EXPERIMENT] [--scale test|full|large|planet] [--seed N] [--jobs N] \
                     [--timing] [--timing-json PATH] [--csv DIR] \
                     [--faults off|light|heavy] [--keep-going] [--snapshot PATH] \
                     [--checkpoint DIR] [--resume DIR] [--shard I/N]\n\
                     repro propagate [--scale S] [--seed N] [--jobs N] [--snapshot PATH] \
                     [--origins K] [--prefixes K] [--csv DIR] [--timing] [--timing-json PATH]\n\
                     repro merge SHARD_DIR... [--csv DIR] [--report]\n\
                     repro orchestrate N [--dir DIR] [--chaos off|light|heavy] \
                     [--hang-timeout SECS]\n\
                     repro serve --dir DIR [--windows N] [--epoch K] [--epsilon E] \
                     [--mem-limit BYTES]\n\
                     experiments: all fig1 fig2 s311 fig3 fig4 fig5 calib goodput \
                     xpeer xgroom xsites xonenet xsplit xablate xavail xhybrid xfabric xecs audit\n\
                     audit      sweep the built worlds and studies through bb-audit's\n\
                     {:11}invariant rules + metamorphic relations (exit 1 on violation)\n\
                     --jobs N   worker threads (default: available cores); output is\n\
                     {:11}byte-identical for every N\n\
                     --timing   per-experiment wall-clock, sample counters, and cache\n\
                     {:11}stats on stderr\n\
                     --timing-json PATH  write the structured perf report (phases,\n\
                     {:11}samples/sec, plan compile vs query time, cache rates) as JSON\n\
                     --faults L  inject measurement faults (probe loss, timeouts, BGP\n\
                     {:11}route churn) at level L; off (default) is byte-identical\n\
                     {:11}to a build without the fault plane\n\
                     --keep-going  on experiment failure or panic, print a diagnostic\n\
                     {:11}and continue; survivors print normally, exit code 1\n\
                     --snapshot PATH  build the worlds from a CAIDA-style AS-relationship\n\
                     {:11}snapshot (a|b|-1 provider-customer, a|b|0 peer) instead of\n\
                     {:11}the generated topology; bad snapshots are usage errors\n\
                     --checkpoint DIR  flush a resumable checkpoint manifest after each\n\
                     {:11}completed experiment; SIGINT/SIGTERM drain gracefully\n\
                     --resume DIR  replay completed experiments from DIR's checkpoint\n\
                     {:11}(stale checkpoints are rejected, exit 2), continue the rest\n\
                     --shard I/N  run slice I of the selected experiments into the\n\
                     {:11}checkpoint (no stdout); `repro merge` stitches the shards\n\
                     {:11}byte-identically to the unsharded run\n\
                     merge DIR...  validate + merge shard checkpoints, print the\n\
                     {:11}campaign stdout; --csv re-emits the captured exports;\n\
                     {:11}--report prints a per-shard diagnosis on failure\n\
                     orchestrate N  spawn N supervised shard processes, restart\n\
                     {:11}crashed/hung ones from their checkpoints, auto-merge\n\
                     propagate  planet-tier propagation smoke: shard full route\n\
                     {:11}propagation from --origins K eyeballs across --jobs workers,\n\
                     {:11}check valley-freeness, report interned vs naive RIB bytes,\n\
                     {:11}spray the first --prefixes K client prefixes\n\
                     serve      streaming daemon: advance the spray campaign in\n\
                     {:11}epochs, snapshot state atomically every epoch, resume\n\
                     {:11}after SIGKILL byte-identically; --epsilon E > 0 uses\n\
                     {:11}bounded-memory sketches, --mem-limit arms the governor\n\
                     exit codes: 0 ok, 1 runtime failure, 2 usage error, \
                     130 interrupted (resumable)",
                    "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "", "",
                    "", "", "", "", ""
                );
                std::process::exit(0);
            }
            e => experiment = e.to_string(),
        }
        i += 1;
    }
    // Flag-combination conflicts are usage errors (exit 2), never silent
    // precedence: `--resume DIR` already implies checkpointing back into
    // DIR, so a *different* `--checkpoint` directory contradicts it.
    if let (Some(c), Some(r)) = (&checkpoint, &resume) {
        if c != r {
            eprintln!(
                "--checkpoint {} conflicts with --resume {}; --resume already checkpoints back into the same directory",
                c.display(),
                r.display()
            );
            std::process::exit(2);
        }
    }
    if experiment == "audit" && (checkpoint.is_some() || resume.is_some()) {
        eprintln!("audit runs standalone and does not support --checkpoint/--resume");
        std::process::exit(2);
    }
    if shard.is_some() && checkpoint.is_none() && resume.is_none() {
        eprintln!(
            "--shard requires --checkpoint DIR: a shard's only output is its \
             checkpoint manifest (stitch the shards with `repro merge`)"
        );
        std::process::exit(2);
    }
    Args {
        experiment,
        scale,
        seed,
        csv_dir,
        jobs,
        timing,
        timing_json,
        faults,
        keep_going,
        checkpoint,
        resume,
        shard,
        snapshot,
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Test => "test",
        Scale::Full => "full",
        Scale::Large => "large",
        Scale::Planet => "planet",
    }
}

/// Build a scenario, mapping usage-class failures (an unreadable or
/// malformed `--snapshot` file) to exit 2 per the CLI contract and any
/// other build failure to exit 1.
fn build_world_or_exit(cfg: ScenarioConfig) -> Scenario {
    match Scenario::try_build(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            let code = match e {
                beating_bgp::core::BbError::Usage { .. } => 2,
                _ => 1,
            };
            std::process::exit(code);
        }
    }
}

/// Assemble the structured perf report from the timing registry, the
/// sample counters, the subsystem caches, and the supervision report.
fn perf_report(
    args: &Args,
    wall_s: f64,
    supervision: &SupervisionReport,
    route_cache_by_experiment: Vec<beating_bgp::bench::ExperimentCacheStats>,
) -> beating_bgp::bench::PerfReport {
    use beating_bgp::bench::{CounterSample, PerfReport, PhaseTiming, RouteCacheStats};
    let (hits, misses, resident) = beating_bgp::exec::cache_stats();
    PerfReport {
        experiment: args.experiment.clone(),
        scale: scale_label(args.scale).to_string(),
        seed: args.seed,
        jobs: beating_bgp::exec::jobs(),
        wall_s,
        phases: timing::snapshot()
            .into_iter()
            .map(|(label, total_s, calls)| PhaseTiming {
                label,
                total_s,
                calls,
            })
            .collect(),
        counters: timing::counters()
            .into_iter()
            .map(|(label, count)| CounterSample { label, count })
            .collect(),
        total_samples: 0,
        samples_per_sec: 0.0,
        plan_compile_s: 0.0,
        plan_query_s: 0.0,
        route_cache: RouteCacheStats {
            hits: hits as u64,
            misses: misses as u64,
            resident: resident as u64,
        },
        route_cache_by_experiment,
        faults: {
            let counters = timing::counters();
            let get = |label: &str| {
                counters
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|&(_, c)| c)
                    .unwrap_or(0)
            };
            beating_bgp::bench::FaultStats {
                samples_lost: get("faults:samples_lost"),
                timeouts: get("faults:timeouts"),
                retries: get("faults:retries"),
                windows_dropped: get("faults:windows_dropped"),
                panics_isolated: beating_bgp::exec::panics_isolated() as u64,
            }
        },
        supervision: beating_bgp::bench::SupervisionStats {
            attempts: supervision.attempts,
            retries: supervision.retries,
            panics_absorbed: supervision.panics_absorbed,
            recovered: supervision.count("recovered") as u64,
            failed: supervision.count("failed") as u64,
            skipped: supervision.count("skipped") as u64,
            budget_exhausted: supervision.budget_exhausted,
        },
        orchestration: None,
        serve: None,
        rib: None,
        congestion_races_closed: beating_bgp::netsim::materialize_races_closed() as u64,
    }
    .finalize()
}

fn spray_cfg(scale: Scale) -> SprayConfig {
    match scale {
        Scale::Test => SprayConfig {
            days: 1.0,
            window_stride: 8,
            ..Default::default()
        },
        Scale::Full => SprayConfig::default(),
        // Keep the Large run's row count comparable by sampling windows
        // more sparsely over the same ten days.
        Scale::Large => SprayConfig {
            window_stride: 8,
            ..Default::default()
        },
        // The planet world is ~10x Large in ASes; spray a single day with
        // a coarse stride so the campaign stays CI-sized while every
        // window still exercises the full interned-RIB path.
        Scale::Planet => SprayConfig {
            days: 1.0,
            window_stride: 16,
            sessions_per_window: 5,
            ..Default::default()
        },
    }
}

/// `repro merge SHARD_DIR... [--csv DIR] [--report]`: stitch shard
/// checkpoints into the campaign's stdout, byte-identical to the unsharded
/// run. Every validation failure — unreadable manifest, mismatched
/// campaign keys, coverage gaps, conflicting duplicate units, schema
/// drift — is a usage error (exit 2); a partial merge is never printed.
/// With `--report`, a per-shard diagnosis (salvaged/unreadable manifests,
/// key mismatches, which experiments are missing) is printed to stderr
/// before any exit-2, instead of only the first error encountered.
fn run_merge() -> ! {
    use beating_bgp::core::checkpoint;
    let argv: Vec<String> = std::env::args().skip(2).collect();
    let mut dirs: Vec<std::path::PathBuf> = Vec::new();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut report = false;
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--csv" => {
                i += 1;
                let dir = std::path::PathBuf::from(argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--csv: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                csv_dir = Some(dir);
            }
            "--report" => report = true,
            "--help" | "-h" => {
                println!(
                    "repro merge SHARD_DIR... [--csv DIR] [--report]\n\
                     stitch shard checkpoints (written by `repro --shard I/N --checkpoint`)\n\
                     into the campaign's stdout, byte-identical to the unsharded run;\n\
                     --csv re-emits the CSV exports captured in the shard manifests\n\
                     --report prints a per-shard diagnosis (salvaged/corrupt manifests,\n\
                     missing experiments, key mismatches) before any failure exit\n\
                     exit codes: 0 ok, 2 shards invalid/incomplete/mismatched"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro merge: unknown flag {flag}");
                std::process::exit(2);
            }
            dir => dirs.push(std::path::PathBuf::from(dir)),
        }
        i += 1;
    }
    if dirs.is_empty() {
        eprintln!("repro merge: no shard directories given");
        std::process::exit(2);
    }
    let shards: Vec<checkpoint::Checkpoint> = if report {
        merge_report(&dirs)
    } else {
        dirs.iter()
            .map(|d| {
                checkpoint::Checkpoint::load(d).unwrap_or_else(|e| {
                    eprintln!("repro merge: {}: {e}", d.display());
                    std::process::exit(2);
                })
            })
            .collect()
    };
    finish_merge("repro merge", &dirs, shards, csv_dir.as_deref())
}

/// The `--report` loading path: examine every shard directory with the
/// salvaging parser, print a per-shard diagnosis to stderr (load status,
/// units present, key mismatches, campaign-level coverage gaps), then
/// either return the usable manifests or exit 2 if any was unreadable.
/// Salvaged manifests proceed with their valid prefix — when the other
/// shards overlap the dropped units, the merge still completes.
fn merge_report(dirs: &[std::path::PathBuf]) -> Vec<Checkpoint> {
    use beating_bgp::core::checkpoint::Salvage;
    let loads: Vec<Result<(Checkpoint, Option<Salvage>), String>> = dirs
        .iter()
        .map(|d| Checkpoint::load_salvaging(d).map_err(|e| e.to_string()))
        .collect();
    eprintln!("[repro] merge report ({} shard dir(s)):", dirs.len());
    for (d, load) in dirs.iter().zip(&loads) {
        match load {
            Ok((ck, None)) => {
                let names: Vec<&str> = ck.units.keys().map(String::as_str).collect();
                eprintln!(
                    "  {}: ok — {} unit(s): {}",
                    d.display(),
                    ck.units.len(),
                    if names.is_empty() { "(none)".to_string() } else { names.join(",") }
                );
            }
            Ok((ck, Some(s))) => {
                eprintln!(
                    "  {}: SALVAGED — {s}; {} unit(s) usable",
                    d.display(),
                    ck.units.len()
                );
            }
            Err(e) => eprintln!("  {}: UNREADABLE — {e}", d.display()),
        }
    }
    // Campaign-level view against the first readable key: which
    // experiments no shard provides, and which shards disagree on the key.
    if let Some((first, _)) = loads.iter().flatten().next() {
        for (d, load) in dirs.iter().zip(&loads) {
            if let Ok((ck, _)) = load {
                if let Err(e) = ck.validate(&first.key) {
                    eprintln!("  {}: key mismatch — {e}", d.display());
                }
            }
        }
        let missing: Vec<&str> = first
            .key
            .experiments
            .split(',')
            .filter(|e| {
                !e.is_empty()
                    && !loads
                        .iter()
                        .flatten()
                        .any(|(ck, _)| ck.units.contains_key(*e))
            })
            .collect();
        if missing.is_empty() {
            eprintln!("  campaign: all {} experiments covered", first.key.experiments.split(',').count());
        } else {
            eprintln!("  campaign: missing {}", missing.join(","));
        }
    }
    let unreadable = loads.iter().filter(|l| l.is_err()).count();
    if unreadable > 0 {
        eprintln!("repro merge: {unreadable} shard manifest(s) unreadable");
        std::process::exit(2);
    }
    loads.into_iter().map(|l| l.unwrap().0).collect()
}

/// Validate and merge loaded shard manifests, emit the campaign stdout
/// (and captured CSVs), and exit. Shared by `repro merge` and the
/// auto-merge at the end of `repro orchestrate`. Merge failures exit 2.
fn finish_merge(
    who: &str,
    dirs: &[std::path::PathBuf],
    shards: Vec<Checkpoint>,
    csv_dir: Option<&std::path::Path>,
) -> ! {
    use beating_bgp::core::checkpoint;
    // `merge_shards` checks the shards against *each other*; the binary's
    // own schema must match too, or the stitched bytes would claim to be
    // this build's output.
    if shards[0].key.code_schema != checkpoint::CODE_SCHEMA {
        eprintln!(
            "{who}: manifest code_schema {} does not match this binary ({})",
            shards[0].key.code_schema,
            checkpoint::CODE_SCHEMA
        );
        std::process::exit(2);
    }
    let merged = checkpoint::merge_shards(&shards).unwrap_or_else(|e| {
        eprintln!("{who}: {e}");
        std::process::exit(2);
    });
    // Coverage is guaranteed by merge_shards, so assembling in the key's
    // experiment order reproduces the unsharded stdout exactly.
    let mut stdout = String::new();
    for name in merged.key.experiments.split(',') {
        let unit = merged
            .units
            .get(name)
            .expect("merge_shards verified coverage of every experiment");
        stdout.push_str(&unit.stdout);
        if let Some(dir) = &csv_dir {
            for (fname, bytes) in &unit.files {
                if let Err(e) =
                    beating_bgp::core::export::write_atomic_bytes(&dir.join(fname), bytes)
                {
                    eprintln!("{who}: writing {fname}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    eprintln!(
        "[repro] merged {} shard manifest(s): {} experiments, seed {}, scale {}, faults {}",
        dirs.len(),
        merged.units.len(),
        merged.key.seed,
        merged.key.scale,
        merged.key.faults
    );
    print!("{stdout}");
    std::process::exit(0);
}

/// `repro orchestrate N`: the self-healing way to run a sharded campaign.
///
/// Spawns one `repro all --shard I/N --checkpoint` child per shard, watches
/// heartbeats, restarts crashed/hung children from their own checkpoints
/// (salvaging torn manifests first), then auto-merges — stdout is
/// byte-identical to the unsharded run. `--chaos light|heavy` switches on a
/// deterministic fault plan, keyed entirely on the seed:
///
/// * **light** — one derived shard crashes (exit 101) partway through its
///   slice on its first launch.
/// * **heavy** — one derived shard stalls (10-minute sleep → stale
///   heartbeat → killed), every other shard crashes partway through, and
///   the first crashed shard's manifest is torn by 16 bytes before its
///   restart, forcing the salvage path.
///
/// Faults are injected only into each shard's *first* launch (via the
/// child env hooks `BB_REPRO_CRASH` / `BB_REPRO_STALL`), and a crash can
/// only fire after a finalized unit was flushed — so every chaos plan
/// terminates, and recovery always has progress to resume from.
fn run_orchestrate() -> ! {
    use beating_bgp::core::checkpoint::{HEARTBEAT_NAME, MANIFEST_NAME};
    use beating_bgp::exec::derive_seed;
    use beating_bgp::exec::orchestrator::{orchestrate, OrchestratorPolicy, ShardSpec};
    use std::process::{Command, Stdio};

    #[derive(Clone, Copy, PartialEq)]
    enum Chaos {
        Off,
        Light,
        Heavy,
    }
    /// Fault injected into one shard's first launch.
    #[derive(Clone, Copy, PartialEq)]
    enum Fault {
        None,
        /// `BB_REPRO_CRASH`: exit 101 after this many finalized units.
        Crash { after_units: usize },
        /// `BB_REPRO_STALL`: sleep before this experiment, attempt 0 only.
        Stall { exp: &'static str },
    }

    let argv: Vec<String> = std::env::args().skip(2).collect();
    let mut n: Option<usize> = None;
    let mut base: Option<std::path::PathBuf> = None;
    let mut scale = "full".to_string();
    let mut seed = 42u64;
    let mut jobs: Option<usize> = None;
    let mut faults = "off".to_string();
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut chaos = Chaos::Off;
    let mut hang_timeout = 30.0f64;
    let mut timing_json: Option<std::path::PathBuf> = None;
    let need = |i: &mut usize, what: &str| -> String {
        *i += 1;
        argv.get(*i).cloned().unwrap_or_else(|| {
            eprintln!("{what} needs a value");
            std::process::exit(2);
        })
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--dir" => base = Some(std::path::PathBuf::from(need(&mut i, "--dir"))),
            "--scale" => {
                scale = need(&mut i, "--scale");
                if !matches!(scale.as_str(), "test" | "full" | "large" | "planet") {
                    eprintln!("unknown scale {scale:?}; use test|full|large|planet");
                    std::process::exit(2);
                }
            }
            "--seed" => {
                seed = need(&mut i, "--seed").parse().unwrap_or_else(|_| {
                    eprintln!("--seed needs a number");
                    std::process::exit(2);
                });
            }
            "--jobs" => {
                jobs = Some(need(&mut i, "--jobs").parse().unwrap_or_else(|_| {
                    eprintln!("--jobs needs a number");
                    std::process::exit(2);
                }));
            }
            "--faults" => {
                faults = need(&mut i, "--faults");
                if faults.parse::<FaultLevel>().is_err() {
                    eprintln!("--faults: unknown level {faults:?}; use off|light|heavy");
                    std::process::exit(2);
                }
            }
            "--csv" => {
                let dir = std::path::PathBuf::from(need(&mut i, "--csv"));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--csv: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                csv_dir = Some(dir);
            }
            "--chaos" => {
                chaos = match need(&mut i, "--chaos").as_str() {
                    "off" => Chaos::Off,
                    "light" => Chaos::Light,
                    "heavy" => Chaos::Heavy,
                    other => {
                        eprintln!("--chaos: unknown level {other:?}; use off|light|heavy");
                        std::process::exit(2);
                    }
                };
            }
            "--hang-timeout" => {
                hang_timeout = need(&mut i, "--hang-timeout").parse().unwrap_or_else(|_| {
                    eprintln!("--hang-timeout needs seconds");
                    std::process::exit(2);
                });
            }
            "--timing-json" => {
                timing_json = Some(std::path::PathBuf::from(need(&mut i, "--timing-json")));
            }
            "--help" | "-h" => {
                println!(
                    "repro orchestrate N [--dir DIR] [--scale test|full|large] [--seed N]\n\
                     \u{20}                   [--jobs N] [--faults off|light|heavy] [--csv DIR]\n\
                     \u{20}                   [--chaos off|light|heavy] [--hang-timeout SECS]\n\
                     \u{20}                   [--timing-json PATH]\n\
                     spawn N shard processes (repro all --shard I/N), monitor heartbeats,\n\
                     restart crashed/hung shards from their checkpoints (torn manifests\n\
                     are salvaged), then merge — stdout is byte-identical to `repro all`.\n\
                     --dir DIR    shard checkpoints live here (default: a seed/scale-keyed\n\
                     \u{20}            temp directory; reruns resume from it)\n\
                     --chaos L    deterministic fault plan: light = one shard crashes;\n\
                     \u{20}            heavy = one stalls, the rest crash, one manifest torn\n\
                     exit codes: 0 ok, 1 shard failed permanently (partial checkpoints\n\
                     kept), 2 usage error, 130 interrupted (children killed, resumable)"
                );
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                eprintln!("repro orchestrate: unknown flag {flag}");
                std::process::exit(2);
            }
            count => {
                n = Some(count.parse().unwrap_or_else(|_| {
                    eprintln!("repro orchestrate: bad shard count {count:?}");
                    std::process::exit(2);
                }));
            }
        }
        i += 1;
    }
    let n = n.unwrap_or_else(|| {
        eprintln!("repro orchestrate: shard count required (e.g. `repro orchestrate 3`)");
        std::process::exit(2);
    });
    if n == 0 || n > EXPERIMENT_NAMES.len() {
        eprintln!(
            "repro orchestrate: shard count must be 1..={} (one experiment per shard at most)",
            EXPERIMENT_NAMES.len()
        );
        std::process::exit(2);
    }
    let base = base.unwrap_or_else(|| {
        std::env::temp_dir().join(format!("bb_orchestrate_{seed}_{scale}"))
    });

    // --- Chaos plan: which shard gets which first-launch fault. ---
    // Victims and crash points are derived from the campaign seed alone, so
    // one seed replays one fault schedule. Slice bounds mirror the --shard
    // arithmetic over EXPERIMENT_NAMES (debug-asserted in `main` to match
    // the real experiment list).
    let slice = |i: usize| -> &'static [&'static str] {
        let total = EXPERIMENT_NAMES.len();
        &EXPERIMENT_NAMES[i * total / n..(i + 1) * total / n]
    };
    // Crash after 1..=slice_len finalized units: always after *some*
    // progress was flushed (so recovery resumes, never thrashes), possibly
    // after all of it (restart finds the shard complete — also legal).
    let crash_point =
        |i: usize| 1 + (derive_seed(seed, 0xC4A6 ^ i as u64) as usize) % slice(i).len().max(1);
    let plan: Vec<Fault> = match chaos {
        Chaos::Off => vec![Fault::None; n],
        Chaos::Light => {
            let victim = (derive_seed(seed, 0xC4A5) % n as u64) as usize;
            (0..n)
                .map(|i| {
                    if i == victim {
                        Fault::Crash { after_units: crash_point(i) }
                    } else {
                        Fault::None
                    }
                })
                .collect()
        }
        Chaos::Heavy => {
            let stalled = (derive_seed(seed, 0x57A11) % n as u64) as usize;
            (0..n)
                .map(|i| {
                    if i == stalled {
                        // Sleep far longer than any sane hang timeout right
                        // before the slice's last experiment: the watcher
                        // must kill it, nothing else will.
                        Fault::Stall { exp: slice(i).last().unwrap_or(&"calib") }
                    } else {
                        Fault::Crash { after_units: crash_point(i) }
                    }
                })
                .collect()
        }
    };
    // Heavy chaos also tears the first crashing shard's manifest before its
    // restart, forcing the salvage path end to end.
    let tear_victim: Option<usize> = match chaos {
        Chaos::Heavy => plan.iter().position(|f| matches!(f, Fault::Crash { .. })),
        _ => None,
    };

    let shard_dir = |i: usize| base.join(format!("shard{i}"));
    let specs: Vec<ShardSpec> = (0..n)
        .map(|i| ShardSpec {
            label: format!("shard {i}/{n}"),
            heartbeat: shard_dir(i).join(HEARTBEAT_NAME),
        })
        .collect();
    let exe = std::env::current_exe().unwrap_or_else(|e| {
        eprintln!("repro orchestrate: cannot resolve own binary: {e}");
        std::process::exit(1);
    });

    eprintln!(
        "[repro] orchestrate: {n} shard(s), scale {scale}, seed {seed}, faults {faults}, \
         chaos {}, dir {}",
        match chaos {
            Chaos::Off => "off",
            Chaos::Light => "light",
            Chaos::Heavy => "heavy",
        },
        base.display()
    );

    let mut salvages = 0u64;
    let mut torn = false;
    let mut spawn = |i: usize, attempt: u32| -> std::io::Result<std::process::Child> {
        let dir = shard_dir(i);
        std::fs::create_dir_all(&dir)?;
        let manifest = dir.join(MANIFEST_NAME);
        if attempt > 0 {
            if tear_victim == Some(i) && !torn {
                // Chaos tear: chop 16 bytes off the manifest tail, exactly
                // the damage an interrupted write leaves. The child's
                // salvaging --resume must absorb it.
                torn = true;
                if let Ok(bytes) = std::fs::read(&manifest) {
                    if bytes.len() > 16 {
                        let _ = std::fs::write(&manifest, &bytes[..bytes.len() - 16]);
                        eprintln!(
                            "[repro] chaos: tore 16 bytes off {} before restart",
                            manifest.display()
                        );
                    }
                }
            }
            // Count salvage events for the orchestration report: the child
            // re-saves the manifest whole, so peek before it launches.
            if let Ok((_, Some(s))) = Checkpoint::load_salvaging(&dir) {
                salvages += 1;
                eprintln!("[repro] shard {i}/{n}: manifest torn, will salvage ({s})");
            }
        }
        let mut cmd = Command::new(&exe);
        cmd.arg("all")
            .arg("--scale")
            .arg(&scale)
            .arg("--seed")
            .arg(seed.to_string())
            .arg("--faults")
            .arg(&faults)
            .arg("--shard")
            .arg(format!("{i}/{n}"));
        // Resume whenever a manifest exists (even a torn one — the child
        // salvages it); otherwise start a fresh checkpoint.
        if manifest.exists() {
            cmd.arg("--resume").arg(&dir);
        } else {
            cmd.arg("--checkpoint").arg(&dir);
        }
        if let Some(j) = jobs {
            cmd.arg("--jobs").arg(j.to_string());
        }
        // Shards must capture CSV exports in their manifests (the campaign
        // key records whether CSV was on) so the merge can re-emit them.
        if csv_dir.is_some() {
            let shard_csv = dir.join("csv");
            std::fs::create_dir_all(&shard_csv)?;
            cmd.arg("--csv").arg(&shard_csv);
        }
        // Never let the orchestrator's own env hooks leak into children;
        // chaos faults apply to each shard's first launch only.
        for var in [
            "BB_REPRO_POISON",
            "BB_REPRO_UNIT_LIMIT",
            "BB_REPRO_CRASH",
            "BB_REPRO_STALL",
            "BB_REPRO_ENOSPC",
            "BB_AUDIT_VIOLATE",
        ] {
            cmd.env_remove(var);
        }
        if attempt == 0 {
            match plan[i] {
                Fault::None => {}
                Fault::Crash { after_units } => {
                    cmd.env("BB_REPRO_CRASH", after_units.to_string());
                }
                Fault::Stall { exp } => {
                    cmd.env("BB_REPRO_STALL", format!("{exp}:600"));
                }
            }
        }
        let log = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(dir.join("stderr.log"))?;
        cmd.stdin(Stdio::null()).stdout(Stdio::null()).stderr(log);
        cmd.spawn()
    };

    let policy = OrchestratorPolicy {
        max_restarts: 3,
        restart_budget: (2 * n as u32).max(4),
        backoff_base: std::time::Duration::from_millis(25),
        jitter_seed: seed,
        hang_timeout: std::time::Duration::from_secs_f64(hang_timeout),
        poll_interval: std::time::Duration::from_millis(25),
    };
    install_signal_drain();
    let t0 = std::time::Instant::now();
    let report = orchestrate(
        &specs,
        &policy,
        &|| INTERRUPTED.load(Ordering::Relaxed),
        &mut spawn,
    );
    let wall_s = t0.elapsed().as_secs_f64();

    // The structured report is written even for failed or interrupted
    // campaigns — partial results are exactly when the restart/salvage
    // tallies matter most.
    let stats = beating_bgp::bench::OrchestrationStats {
        shards: report.shards.len() as u64,
        attempts: report.attempts,
        restarts: report.restarts,
        crashes_detected: report.crashes_detected,
        hangs_detected: report.hangs_detected,
        salvages,
        budget_exhausted: report.budget_exhausted,
        per_shard: report
            .shards
            .iter()
            .map(|s| beating_bgp::bench::ShardWall {
                label: s.label.clone(),
                attempts: s.attempts as u64,
                wall_s: s.elapsed_s,
                outcome: s.outcome.label().to_string(),
            })
            .collect(),
    };
    if let Some(path) = &timing_json {
        use beating_bgp::bench as bench;
        let perf = bench::PerfReport {
            experiment: "orchestrate".to_string(),
            scale: scale.clone(),
            seed,
            jobs: jobs.unwrap_or(0),
            wall_s,
            phases: Vec::new(),
            counters: Vec::new(),
            total_samples: 0,
            samples_per_sec: 0.0,
            plan_compile_s: 0.0,
            plan_query_s: 0.0,
            route_cache: bench::RouteCacheStats { hits: 0, misses: 0, resident: 0 },
            route_cache_by_experiment: Vec::new(),
            faults: bench::FaultStats {
                samples_lost: 0,
                timeouts: 0,
                retries: 0,
                windows_dropped: 0,
                panics_isolated: 0,
            },
            supervision: bench::SupervisionStats {
                attempts: 0,
                retries: 0,
                panics_absorbed: 0,
                recovered: 0,
                failed: 0,
                skipped: 0,
                budget_exhausted: false,
            },
            orchestration: Some(stats),
            serve: None,
            rib: None,
            congestion_races_closed: 0,
        }
        .finalize();
        if let Err(e) = std::fs::write(path, perf.to_json()) {
            eprintln!("--timing-json: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    eprintln!(
        "[repro] orchestrate: {} launch(es), {} restart(s), {} crash(es), {} hang(s), \
         {} salvage(s){}",
        report.attempts,
        report.restarts,
        report.crashes_detected,
        report.hangs_detected,
        salvages,
        if report.budget_exhausted { " — restart budget exhausted" } else { "" }
    );

    if report.cancelled {
        eprintln!("=== INTERRUPTED (resumable) ===");
        eprintln!(
            "  children killed; shard checkpoints kept in {} — rerun the same \
             command to resume",
            base.display()
        );
        eprintln!("=== END INTERRUPTED ===");
        std::process::exit(130);
    }
    if !report.all_completed() {
        for s in &report.shards {
            if s.outcome != beating_bgp::exec::orchestrator::ShardOutcome::Completed {
                eprintln!(
                    "  {}: {} after {} launch(es){} — log: {}",
                    s.label,
                    s.outcome.label(),
                    s.attempts,
                    s.error.as_deref().map(|e| format!(" ({e})")).unwrap_or_default(),
                    shard_dir(s.index).join("stderr.log").display()
                );
            }
        }
        eprintln!(
            "repro orchestrate: {}/{} shard(s) did not complete; finished shards' \
             checkpoints are kept in {} — rerun the same command to resume",
            report.shards.len() - report.count("completed"),
            report.shards.len(),
            base.display()
        );
        std::process::exit(1);
    }

    // Every shard completed: strict-load the manifests (salvage was a
    // restart-time concern; a completed shard's manifest must be whole)
    // and emit the campaign output.
    let dirs: Vec<std::path::PathBuf> = (0..n).map(shard_dir).collect();
    let shards: Vec<Checkpoint> = dirs
        .iter()
        .map(|d| {
            Checkpoint::load(d).unwrap_or_else(|e| {
                eprintln!("repro orchestrate: {}: {e}", d.display());
                std::process::exit(2);
            })
        })
        .collect();
    finish_merge("repro orchestrate", &dirs, shards, csv_dir.as_deref())
}

/// `repro serve`: the streaming (daemon) shape of the §3.1 spray campaign.
///
/// Advances measurement windows on the simulated clock in epochs of
/// `--epoch K` windows. At every epoch boundary the entire accumulated
/// state is flushed as a `bbsn/v1` snapshot (atomic temp-file + fsync +
/// rename + dir-fsync), so a SIGKILL at any instant costs at most one
/// epoch of deterministically-resampled work: restarting with the same
/// `--dir` resumes from the snapshot and the eventual output is
/// byte-identical to an uninterrupted run at the same (seed, scale,
/// window count) — for every `--jobs` value.
///
/// `--epsilon 0` (default) retains every window row and hands the final
/// dataset to the *batch* analyzer, so the figure (and `--csv` export) is
/// byte-identical to `repro fig1` over the same windows. `--epsilon ε > 0`
/// folds rows into bounded-memory mergeable quantile sketches; with
/// `--mem-limit BYTES` the governor coarsens the sketches (halving
/// memory, doubling ε) instead of letting resident state grow — decisions
/// land only at epoch boundaries, which the snapshot key pins, so
/// degraded-mode output is as deterministic and resumable as everything
/// else.
fn run_serve() -> ! {
    use beating_bgp::core::serve::{Governor, ServeMode, ServeState};
    use beating_bgp::core::snapshot::{ServeKey, Snapshot, SNAPSHOT_NAME};
    use beating_bgp::measure::SprayEngine;

    let argv: Vec<String> = std::env::args().skip(2).collect();
    let mut scale = Scale::Full;
    let mut seed = 42u64;
    let mut jobs = 0usize;
    let mut faults = FaultLevel::Off;
    let mut dir: Option<std::path::PathBuf> = None;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut windows: Option<u64> = None;
    let mut epoch = 32u64;
    let mut epsilon = 0.0f64;
    let mut mem_limit: Option<u64> = None;
    let mut epoch_deadline = 60.0f64;
    let mut chaos = false;
    let mut timing = false;
    let mut timing_json: Option<std::path::PathBuf> = None;
    let usage = |msg: &str| -> ! {
        eprintln!("repro serve: {msg}");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    Some("large") => Scale::Large,
                    Some("planet") => Scale::Planet,
                    other => usage(&format!("unknown scale {other:?}; use test|full|large|planet")),
                };
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                i += 1;
                jobs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number"));
            }
            "--faults" => {
                i += 1;
                faults = match argv.get(i).map(String::as_str).unwrap_or("").parse() {
                    Ok(level) => level,
                    Err(e) => usage(&format!("--faults: {e}")),
                };
            }
            "--dir" => {
                i += 1;
                dir = Some(std::path::PathBuf::from(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--dir needs a directory")),
                ));
            }
            "--csv" => {
                i += 1;
                let d = std::path::PathBuf::from(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                );
                if let Err(e) = std::fs::create_dir_all(&d) {
                    usage(&format!("--csv: cannot create {}: {e}", d.display()));
                }
                csv_dir = Some(d);
            }
            "--windows" => {
                i += 1;
                windows = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage("--windows needs a number")),
                );
            }
            "--epoch" => {
                i += 1;
                epoch = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage("--epoch needs a window count >= 1"));
            }
            "--epsilon" => {
                i += 1;
                epsilon = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|e: &f64| (0.0..1.0).contains(e))
                    .unwrap_or_else(|| usage("--epsilon needs a value in [0, 1)"));
            }
            "--mem-limit" => {
                i += 1;
                mem_limit = Some(
                    argv.get(i)
                        .and_then(|s| s.parse().ok())
                        .filter(|&b| b > 0)
                        .unwrap_or_else(|| usage("--mem-limit needs a byte count > 0")),
                );
            }
            "--epoch-deadline" => {
                i += 1;
                epoch_deadline = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|s: &f64| *s > 0.0)
                    .unwrap_or_else(|| usage("--epoch-deadline needs seconds > 0"));
            }
            "--chaos" => chaos = true,
            "--timing" => timing = true,
            "--timing-json" => {
                i += 1;
                timing_json = Some(std::path::PathBuf::from(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--timing-json needs a file path")),
                ));
            }
            other => usage(&format!("unknown flag {other:?}")),
        }
        i += 1;
    }
    let dir = dir.unwrap_or_else(|| {
        usage("--dir DIR is required: the serve directory holds the snapshot the daemon resumes from")
    });
    if mem_limit.is_some() && epsilon == 0.0 {
        usage(
            "--mem-limit needs --epsilon E > 0: exact mode retains every row by \
             contract and the governor refuses to discard data",
        );
    }

    beating_bgp::exec::set_jobs(jobs);
    install_signal_drain();
    let t0 = std::time::Instant::now();

    // Same world and spray compilation as the batch fig1 path: serve's
    // window universe is the batch universe (window_at(i) strides exactly
    // like batch_windows), which is what makes exact mode byte-identical
    // to `repro fig1` over the same window count.
    let mut cfg = ScenarioConfig::facebook(seed, scale);
    cfg.faults = faults.config();
    eprintln!("[repro] building Facebook-like world…");
    let scenario = timing::time("world:facebook", || Scenario::build(cfg));
    let spray_config = SprayConfig {
        targets_memo: Some(scenario.config.world_key()),
        ..spray_cfg(scale)
    };
    let engine = timing::time("serve:compile", || {
        SprayEngine::new(
            &scenario.topo,
            &scenario.provider,
            &scenario.workload,
            &scenario.congestion,
            &spray_config,
        )
    });
    let batch_horizon = engine.batch_windows().len() as u64;
    let total_windows = windows.unwrap_or(batch_horizon);
    let route_counts: Vec<usize> = engine.targets().iter().map(|t| t.routes.len()).collect();
    let mode = ServeMode::from_eps(epsilon);
    let key = ServeKey::new(
        seed,
        scale_label(scale),
        faults.as_str(),
        epsilon,
        epoch,
        csv_dir.is_some(),
    );

    // Fresh start or snapshot resume. A missing snapshot file is a fresh
    // start; anything else that fails — stale key, torn bytes, checksum
    // mismatch — is a hard reject (exit 2): resuming from state we cannot
    // trust would poison every epoch after it.
    let snapshot_path = dir.join(SNAPSHOT_NAME);
    let (mut state, mut epochs_flushed, mut coarsenings, resumed) = if snapshot_path.exists() {
        let snap = Snapshot::load(&dir).unwrap_or_else(|e| {
            eprintln!("repro serve: {}: {e}", snapshot_path.display());
            std::process::exit(2);
        });
        if let Err(e) = snap.validate(&key) {
            eprintln!("repro serve: {}: {e}", snapshot_path.display());
            std::process::exit(2);
        }
        let state = ServeState::decode(&snap.state).unwrap_or_else(|e| {
            eprintln!("repro serve: {}: {e}", snapshot_path.display());
            std::process::exit(2);
        });
        if state.windows_done() != snap.windows_done {
            eprintln!(
                "repro serve: {}: snapshot header says {} windows but state blob \
                 carries {} — refusing to resume",
                snapshot_path.display(),
                snap.windows_done,
                state.windows_done()
            );
            std::process::exit(2);
        }
        eprintln!(
            "[repro] serve: resuming at window {}/{total_windows} (epoch {}, {} governor \
             coarsenings so far) from {}",
            snap.windows_done,
            snap.epochs,
            snap.coarsenings,
            snapshot_path.display()
        );
        (state, snap.epochs, snap.coarsenings, true)
    } else {
        (ServeState::new(mode, &route_counts), 0u64, 0u64, false)
    };

    let governor = mem_limit.map(Governor::new);
    let watchdog = beating_bgp::exec::watchdog::Watchdog::new(
        "serve:epoch",
        std::time::Duration::from_secs_f64(epoch_deadline),
    );
    // `--chaos`: deterministic self-crash (exit 101, like an escaped
    // panic) right after a seed-keyed epoch's snapshot lands — fresh runs
    // only, so the restarted daemon completes. Exercises the
    // kill-mid-campaign path without an external killer.
    let chaos_epoch = 1 + seed % 3;
    let mut deadline_misses = 0u64;
    let mut peak_resident = state.resident_bytes();

    while state.windows_done() < total_windows && !INTERRUPTED.load(Ordering::Relaxed) {
        let started = std::time::Instant::now();
        let lo = state.windows_done();
        let hi = (lo + epoch).min(total_windows);
        let chunk: Vec<beating_bgp::netsim::Window> =
            (lo..hi).map(|i| engine.window_at(i)).collect();
        let per_target = timing::time("serve:sample", || {
            engine.sample_windows(&chunk, scenario.fault_plane())
        });
        state.ingest(per_target, hi - lo);
        if let Some(gov) = &governor {
            let rounds = gov.enforce(&mut state);
            if rounds > 0 {
                coarsenings += rounds;
                eprintln!(
                    "[repro] serve: governor coarsened sketches {rounds} round(s) at \
                     window {} (resident {} bytes, limit {} bytes, eps now {})",
                    state.windows_done(),
                    state.resident_bytes(),
                    gov.limit_bytes,
                    state.current_eps()
                );
            }
        }
        peak_resident = peak_resident.max(state.resident_bytes());
        epochs_flushed += 1;
        let snap = Snapshot {
            key: key.clone(),
            windows_done: state.windows_done(),
            epochs: epochs_flushed,
            coarsenings,
            state: state.encode(),
        };
        // Snapshot and heartbeat writers fail closed (exit 1, named path):
        // the previous epoch's snapshot is still whole on disk, so a rerun
        // resumes from it and loses at most this epoch.
        if let Err(e) = timing::time("serve:flush", || snap.save(&dir)) {
            eprintln!("repro serve: snapshot flush failed: {e}");
            eprintln!(
                "repro serve: previous snapshot in {} is intact; rerun the same \
                 command to resume after freeing space",
                dir.display()
            );
            std::process::exit(1);
        }
        let hb = Heartbeat::now(state.windows_done(), epochs_flushed);
        if let Err(e) = hb.save(&dir) {
            eprintln!("repro serve: heartbeat write failed: {e}");
            eprintln!(
                "repro serve: snapshot in {} is intact; rerun the same command to \
                 resume after freeing space",
                dir.display()
            );
            std::process::exit(1);
        }
        // Live sketch-mode figure export at every epoch boundary: the
        // whole point of the sketch is that a current figure is always
        // cheap. (Exact mode defers to the batch analyzer at the end —
        // recomputing bootstrap CIs per epoch would swamp sampling.)
        if let (Some(csv), ServeMode::Sketch { .. }) = (&csv_dir, mode) {
            if let Ok(fig) = state.sketch_fig1(engine.targets()) {
                let path = csv.join("fig1.csv");
                if let Err(e) =
                    beating_bgp::core::export::write_atomic_bytes(
                        &path,
                        &beating_bgp::core::export::fig1_csv_bytes(&fig),
                    )
                {
                    eprintln!("repro serve: live CSV export failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        if watchdog.observe(started) {
            deadline_misses += 1;
        }
        if chaos && !resumed && epochs_flushed == chaos_epoch {
            eprintln!(
                "[repro] serve: --chaos simulated crash after epoch {epochs_flushed} \
                 (snapshot flushed; rerun the same command to resume)"
            );
            std::process::exit(101);
        }
    }

    if state.windows_done() < total_windows {
        // Signal drain: the last completed epoch is on disk; mid-epoch
        // windows are resampled deterministically on resume.
        eprintln!("=== INTERRUPTED (resumable) ===");
        eprintln!(
            "  {}/{} windows ingested; snapshot flushed to {}",
            state.windows_done(),
            total_windows,
            snapshot_path.display()
        );
        eprintln!("  rerun the same command to resume");
        eprintln!("=== END INTERRUPTED ===");
        std::process::exit(130);
    }

    // Campaign horizon reached: emit the figure.
    let mode_label = match mode {
        ServeMode::Exact => "exact",
        ServeMode::Sketch { .. } => "sketch",
    };
    let eps_in_force = state.current_eps();
    let resident_bytes = state.resident_bytes();
    let windows_done = state.windows_done();
    let render = match mode {
        ServeMode::Exact => {
            let rows = state.into_rows().unwrap_or_else(|e| {
                eprintln!("repro serve: {e}");
                std::process::exit(1);
            });
            let dataset = beating_bgp::measure::SprayDataset {
                targets: engine.into_targets(),
                rows,
            };
            let study = timing::time("egress:analyze", || {
                study_egress::analyze(&scenario, &spray_config, dataset)
            })
            .unwrap_or_else(|e| {
                eprintln!("repro serve: {e}");
                std::process::exit(1);
            });
            if let Some(csv) = &csv_dir {
                if let Err(e) = beating_bgp::core::export::write_atomic_bytes(
                    &csv.join("fig1.csv"),
                    &beating_bgp::core::export::fig1_csv_bytes(&study.fig1),
                ) {
                    eprintln!("repro serve: CSV export failed: {e}");
                    std::process::exit(1);
                }
            }
            format!("{}\n", study.fig1.render())
        }
        ServeMode::Sketch { .. } => {
            let fig = state.sketch_fig1(engine.targets()).unwrap_or_else(|e| {
                eprintln!("repro serve: {e}");
                std::process::exit(1);
            });
            if let Some(csv) = &csv_dir {
                if let Err(e) = beating_bgp::core::export::write_atomic_bytes(
                    &csv.join("fig1.csv"),
                    &beating_bgp::core::export::fig1_csv_bytes(&fig),
                ) {
                    eprintln!("repro serve: CSV export failed: {e}");
                    std::process::exit(1);
                }
            }
            let mut s = fig.render();
            if let Some(note) = state.sketch_disclosure() {
                s.push_str(&note);
            }
            s.push('\n');
            s
        }
    };
    print!("{render}");

    let wall_s = t0.elapsed().as_secs_f64();
    if timing {
        eprint!("{}", timing::report());
        eprintln!(
            "serve: {windows_done} windows in {epochs_flushed} epochs, {coarsenings} \
             coarsening(s), resident {resident_bytes} bytes (peak {peak_resident})"
        );
    }
    if let Some(path) = &timing_json {
        use beating_bgp::bench as bench;
        let perf = bench::PerfReport {
            experiment: "serve".to_string(),
            scale: scale_label(scale).to_string(),
            seed,
            jobs: beating_bgp::exec::jobs(),
            wall_s,
            phases: timing::snapshot()
                .into_iter()
                .map(|(label, total_s, calls)| bench::PhaseTiming {
                    label,
                    total_s,
                    calls,
                })
                .collect(),
            counters: timing::counters()
                .into_iter()
                .map(|(label, count)| bench::CounterSample { label, count })
                .collect(),
            total_samples: 0,
            samples_per_sec: 0.0,
            plan_compile_s: 0.0,
            plan_query_s: 0.0,
            route_cache: {
                let (hits, misses, resident) = beating_bgp::exec::cache_stats();
                bench::RouteCacheStats {
                    hits: hits as u64,
                    misses: misses as u64,
                    resident: resident as u64,
                }
            },
            route_cache_by_experiment: Vec::new(),
            faults: bench::FaultStats {
                samples_lost: 0,
                timeouts: 0,
                retries: 0,
                windows_dropped: 0,
                panics_isolated: 0,
            },
            supervision: bench::SupervisionStats {
                attempts: 0,
                retries: 0,
                panics_absorbed: 0,
                recovered: 0,
                failed: 0,
                skipped: 0,
                budget_exhausted: false,
            },
            orchestration: None,
            serve: Some(bench::ServeStats {
                mode: mode_label.to_string(),
                epsilon,
                epsilon_in_force: eps_in_force,
                windows_done,
                epochs_flushed,
                resident_bytes,
                peak_resident_bytes: peak_resident,
                governor_coarsenings: coarsenings,
                deadline_misses,
                resumed,
            }),
            rib: None,
            congestion_races_closed: beating_bgp::netsim::materialize_races_closed() as u64,
        }
        .finalize();
        if let Err(e) = std::fs::write(path, perf.to_json()) {
            eprintln!("--timing-json: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    std::process::exit(0);
}

/// `repro propagate`: the planet-tier propagation smoke. Builds the
/// selected world (generated preset or `--snapshot` AS-relationship file),
/// fully propagates routes from `--origins K` eyeball ASes sharded across
/// `--jobs` workers, samples every table for valley-freeness, reports the
/// interned-path RIB memory against the naive per-AS `Vec<AsId>` encoding,
/// and runs a bounded spray slice over the first `--prefixes K` client
/// prefixes. Output is assembled in origin order from per-worker results,
/// so stdout and `--csv` exports are byte-identical for every `--jobs`
/// value. Exit 0 = propagation complete and valley-free, 1 = a sampled
/// path violated valley-freeness or an AS was unreachable, 2 = usage.
fn run_propagate() -> ! {
    use beating_bgp::bgp::{valley_free, Announcement};
    use beating_bgp::topology::{AsClass, AsId};

    let argv: Vec<String> = std::env::args().skip(2).collect();
    let mut scale = Scale::Full;
    let mut seed = 42u64;
    let mut jobs = 0usize;
    let mut snapshot: Option<String> = None;
    let mut origins = 16usize;
    let mut prefixes = 64usize;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut timing_flag = false;
    let mut timing_json: Option<std::path::PathBuf> = None;
    let usage = |msg: &str| -> ! {
        eprintln!("repro propagate: {msg}");
        std::process::exit(2);
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    Some("large") => Scale::Large,
                    Some("planet") => Scale::Planet,
                    other => usage(&format!("unknown scale {other:?}; use test|full|large|planet")),
                };
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--seed needs a number"));
            }
            "--jobs" => {
                i += 1;
                jobs = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage("--jobs needs a number"));
            }
            "--snapshot" => {
                i += 1;
                snapshot = Some(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--snapshot needs a file path")),
                );
            }
            "--origins" => {
                i += 1;
                origins = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--origins needs a count >= 1"));
            }
            "--prefixes" => {
                i += 1;
                prefixes = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage("--prefixes needs a count >= 1"));
            }
            "--csv" => {
                i += 1;
                let dir = std::path::PathBuf::from(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--csv needs a directory")),
                );
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    usage(&format!("--csv: cannot create {}: {e}", dir.display()));
                }
                csv_dir = Some(dir);
            }
            "--timing" => timing_flag = true,
            "--timing-json" => {
                i += 1;
                timing_json = Some(std::path::PathBuf::from(
                    argv.get(i)
                        .cloned()
                        .unwrap_or_else(|| usage("--timing-json needs a file path")),
                ));
            }
            "--help" | "-h" => {
                println!(
                    "repro propagate [--scale test|full|large|planet] [--seed N] [--jobs N]\n\
                     \u{20}               [--snapshot PATH] [--origins K] [--prefixes K]\n\
                     \u{20}               [--csv DIR] [--timing] [--timing-json PATH]\n\
                     propagate full routing tables from K eyeball origins, sharded\n\
                     across --jobs workers; check sampled paths for valley-freeness;\n\
                     report interned vs naive RIB bytes; spray the first K prefixes\n\
                     exit codes: 0 ok, 1 propagation invariant violated, 2 usage error"
                );
                std::process::exit(0);
            }
            flag => usage(&format!("unknown argument {flag:?}")),
        }
        i += 1;
    }

    beating_bgp::exec::set_jobs(jobs);
    let t0 = std::time::Instant::now();
    let mut cfg = ScenarioConfig::facebook(seed, scale);
    cfg.snapshot = snapshot;
    eprintln!("[repro] building propagation world…");
    let scenario = timing::time("world:propagate", || build_world_or_exit(cfg));
    let topo = &scenario.topo;

    println!("=== PROPAGATE (scale {}, seed {seed}) ===", scale_label(scale));
    println!(
        "world: {} ases, {} links, fingerprint {:016x}",
        topo.as_count(),
        topo.link_count(),
        topo.fingerprint()
    );

    // Deterministic origin choice: eyeballs in id order, spread evenly.
    let eyeballs: Vec<AsId> = topo.ases_of_class(AsClass::Eyeball).map(|n| n.id).collect();
    if eyeballs.is_empty() {
        eprintln!("repro propagate: world has no eyeball ases to originate from");
        std::process::exit(1);
    }
    let k = origins.min(eyeballs.len());
    let picks: Vec<AsId> = (0..k).map(|i| eyeballs[i * eyeballs.len() / k]).collect();
    println!("origins: {k} of {} eyeball ases", eyeballs.len());

    // One full propagation per origin, sharded across the worker pool.
    // `par_map` keys nothing on thread schedule and returns in item order,
    // and each table is a pure function of `(topology, announcement)`, so
    // the report below is byte-identical for every `--jobs` value.
    let stride = (topo.as_count() / 4096).max(1);
    let reports = timing::time("propagate:routes", || {
        beating_bgp::exec::par_map(&picks, |_, &asn| {
            let ann = Announcement::full(topo, asn);
            let table = beating_bgp::exec::cached_routes(topo, &ann);
            let mut sampled = 0usize;
            let mut violations = 0usize;
            for node in topo.ases().iter().step_by(stride) {
                match table.as_path(node.id) {
                    Some(path) => {
                        sampled += 1;
                        if !valley_free(topo, &path) {
                            violations += 1;
                        }
                    }
                    None => violations += 1,
                }
            }
            (
                table.reachable_count(),
                table.interned_path_bytes(),
                table.naive_path_bytes(),
                table.entry_pool_bytes(),
                sampled,
                violations,
            )
        })
    });

    let mut csv = String::from("origin,reachable,interned_bytes,naive_bytes,entry_pool_bytes\n");
    let (mut interned, mut naive, mut pool) = (0usize, 0usize, 0usize);
    let (mut sampled, mut violations, mut unreachable) = (0usize, 0usize, 0usize);
    for (&asn, &(reach, i_bytes, n_bytes, p_bytes, smp, bad)) in picks.iter().zip(&reports) {
        let name = &topo.asys(asn).name;
        println!(
            "origin {name}: reachable {reach}/{}, interned {i_bytes} B, naive {n_bytes} B",
            topo.as_count()
        );
        writeln!(csv, "{name},{reach},{i_bytes},{n_bytes},{p_bytes}").unwrap();
        interned += i_bytes;
        naive += n_bytes;
        pool += p_bytes;
        sampled += smp;
        violations += bad;
        unreachable += topo.as_count() - reach;
    }
    println!(
        "rib totals: {k} tables, interned {interned} B, naive {naive} B ({:.1}% of naive), \
         entry pool {pool} B",
        100.0 * interned as f64 / naive as f64
    );
    println!("valley-free: {sampled} sampled paths, {violations} violations, {unreachable} unreachable");

    // Bounded spray slice: truncating to the *first* K prefixes keeps
    // PrefixId indexing consistent (ids are dense positions in the list).
    let mut workload = scenario.workload.clone();
    let p = prefixes.min(workload.prefixes.len());
    workload.prefixes.truncate(p);
    workload.prefix_ldns.truncate(p);
    let dataset = timing::time("propagate:spray", || {
        beating_bgp::measure::spray(
            topo,
            &scenario.provider,
            &workload,
            &scenario.congestion,
            None,
            &spray_cfg(scale),
        )
    });
    let route_samples: u64 = dataset
        .rows
        .iter()
        .map(|r| r.route_samples.iter().map(|&s| u64::from(s)).sum::<u64>())
        .sum();
    println!(
        "spray slice: {p} prefixes -> {} targets, {} window rows, {route_samples} route samples",
        dataset.targets.len(),
        dataset.rows.len()
    );
    let failed = violations > 0 || unreachable > 0;
    println!(
        "=== PROPAGATE {} ===",
        if failed { "FAILED" } else { "OK" }
    );

    if let Some(dir) = &csv_dir {
        if let Err(e) =
            beating_bgp::core::export::write_atomic_bytes(&dir.join("propagate.csv"), csv.as_bytes())
        {
            eprintln!("--csv: {e}");
            std::process::exit(1);
        }
    }
    let wall_s = t0.elapsed().as_secs_f64();
    if timing_flag {
        eprint!("{}", timing::report());
    }
    if let Some(path) = &timing_json {
        use beating_bgp::bench as bench;
        let perf = bench::PerfReport {
            experiment: "propagate".to_string(),
            scale: scale_label(scale).to_string(),
            seed,
            jobs: beating_bgp::exec::jobs(),
            wall_s,
            phases: timing::snapshot()
                .into_iter()
                .map(|(label, total_s, calls)| bench::PhaseTiming {
                    label,
                    total_s,
                    calls,
                })
                .collect(),
            counters: timing::counters()
                .into_iter()
                .map(|(label, count)| bench::CounterSample { label, count })
                .collect(),
            total_samples: 0,
            samples_per_sec: 0.0,
            plan_compile_s: 0.0,
            plan_query_s: 0.0,
            route_cache: {
                let (hits, misses, resident) = beating_bgp::exec::cache_stats();
                bench::RouteCacheStats {
                    hits: hits as u64,
                    misses: misses as u64,
                    resident: resident as u64,
                }
            },
            route_cache_by_experiment: Vec::new(),
            faults: bench::FaultStats {
                samples_lost: 0,
                timeouts: 0,
                retries: 0,
                windows_dropped: 0,
                panics_isolated: 0,
            },
            supervision: bench::SupervisionStats {
                attempts: 0,
                retries: 0,
                panics_absorbed: 0,
                recovered: 0,
                failed: 0,
                skipped: 0,
                budget_exhausted: false,
            },
            orchestration: None,
            serve: None,
            rib: None,
            congestion_races_closed: beating_bgp::netsim::materialize_races_closed() as u64,
        }
        .finalize();
        if let Err(e) = std::fs::write(path, perf.to_json()) {
            eprintln!("--timing-json: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    std::process::exit(if failed { 1 } else { 0 });
}

fn main() {
    // Fail fast on a malformed injection hook: a typo'd BB_REPRO_ENOSPC
    // must be a usage error even when the chosen command never writes.
    beating_bgp::core::export::validate_injection_env();
    if std::env::args().nth(1).as_deref() == Some("merge") {
        run_merge();
    }
    if std::env::args().nth(1).as_deref() == Some("propagate") {
        run_propagate();
    }
    if std::env::args().nth(1).as_deref() == Some("orchestrate") {
        run_orchestrate();
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        run_serve();
    }
    let args = parse_args();
    let t0 = std::time::Instant::now();
    beating_bgp::exec::set_jobs(args.jobs);
    let want = |name: &str| args.experiment == "all" || args.experiment == name;
    // Injecting the fault level here (not inside ScenarioConfig's presets)
    // keeps library callers fault-free by default; every world the driver
    // builds — including the fresh ones in xpeer/xablate — goes through
    // `with_faults`.
    let with_faults = |mut cfg: ScenarioConfig| {
        cfg.faults = args.faults.config();
        cfg.snapshot = args.snapshot.clone();
        cfg
    };

    // --- Shared worlds and studies, built once on first use. ---
    // OnceLock::get_or_init blocks concurrent initializers, so when several
    // experiments race for the same world the build still happens exactly
    // once and everyone reads the same object.
    let fb_cell: OnceLock<Scenario> = OnceLock::new();
    let facebook = || {
        fb_cell.get_or_init(|| {
            eprintln!("[repro] building Facebook-like world…");
            timing::time("world:facebook", || {
                build_world_or_exit(with_faults(ScenarioConfig::facebook(args.seed, args.scale)))
            })
        })
    };
    let ms_cell: OnceLock<Scenario> = OnceLock::new();
    let microsoft = || {
        ms_cell.get_or_init(|| {
            eprintln!("[repro] building Microsoft-like world…");
            timing::time("world:microsoft", || {
                build_world_or_exit(with_faults(ScenarioConfig::microsoft(args.seed, args.scale)))
            })
        })
    };
    let gg_cell: OnceLock<Scenario> = OnceLock::new();
    let google = || {
        gg_cell.get_or_init(|| {
            eprintln!("[repro] building Google-like world…");
            timing::time("world:google", || {
                build_world_or_exit(with_faults(ScenarioConfig::google(args.seed, args.scale)))
            })
        })
    };

    // Study cells hold `BbResult`: under heavy faults a shared study can
    // legitimately fail (e.g. every window of a figure degraded away), and
    // every experiment that shares it must see the same error.
    let egress_cell: OnceLock<BbResult<study_egress::EgressStudy>> = OnceLock::new();
    let egress_study = || -> BbResult<&study_egress::EgressStudy> {
        egress_cell
            .get_or_init(|| {
                let scenario = facebook();
                eprintln!("[repro] spraying sessions across egress routes…");
                timing::time("study:egress", || {
                    study_egress::run(scenario, &spray_cfg(args.scale))
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    };
    let anycast_cell: OnceLock<BbResult<study_anycast::AnycastStudy>> = OnceLock::new();
    let anycast_study = || -> BbResult<&study_anycast::AnycastStudy> {
        anycast_cell
            .get_or_init(|| {
                let scenario = microsoft();
                eprintln!("[repro] running beacon campaign…");
                timing::time("study:anycast", || {
                    study_anycast::run(scenario, &BeaconConfig::default())
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    };
    let tiers_cell: OnceLock<BbResult<study_tiers::TiersStudy>> = OnceLock::new();
    let tiers_study = || -> BbResult<&study_tiers::TiersStudy> {
        tiers_cell
            .get_or_init(|| {
                let scenario = google();
                eprintln!("[repro] probing Premium/Standard tiers…");
                timing::time("study:tiers", || {
                    study_tiers::run(scenario, &ProbeConfig::default())
                })
            })
            .as_ref()
            .map_err(Clone::clone)
    };

    // --- `repro audit`: invariant + metamorphic sweep, then exit. ---
    // Runs the same shared worlds/studies the figures are computed from
    // through bb-audit's rule catalog. Exit 0 = every rule held, exit 1 =
    // a violation (the build failed its own contract) or a study error.
    if args.experiment == "audit" {
        let violate = match std::env::var("BB_AUDIT_VIOLATE") {
            Ok(rule) => {
                if !beating_bgp::audit::RULE_NAMES.contains(&rule.as_str()) {
                    eprintln!(
                        "BB_AUDIT_VIOLATE: unknown rule {rule:?}; rules: {}",
                        beating_bgp::audit::RULE_NAMES.join(" ")
                    );
                    std::process::exit(2);
                }
                Some(rule)
            }
            Err(_) => None,
        };
        let run = || -> BbResult<beating_bgp::audit::AuditReport> {
            let egress = egress_study()?;
            let anycast = anycast_study()?;
            let tiers = tiers_study()?;
            Ok(beating_bgp::audit::run_audit(
                facebook(),
                egress,
                microsoft(),
                anycast,
                google(),
                tiers,
                &beating_bgp::audit::AuditOptions {
                    seed: args.seed,
                    scale: args.scale,
                    faults: args.faults.as_str(),
                    violate,
                },
            ))
        };
        match timing::time("audit", run) {
            Ok(report) => {
                print!("{}", report.render());
                if args.timing {
                    eprint!("{}", timing::report());
                }
                std::process::exit(if report.passed() { 0 } else { 1 });
            }
            Err(e) => {
                eprintln!("audit: shared study failed: {e}");
                std::process::exit(1);
            }
        }
    }

    // --- Experiments: (name, closure → unit result), in output order. ---
    // Each closure returns the experiment's stdout chunk plus any files it
    // rendered (written immediately, and captured for the checkpoint so a
    // resumed run can replay them byte-identically without recomputing).
    let text = |stdout: String| -> BbResult<UnitResult> {
        Ok(UnitResult {
            stdout,
            files: Vec::new(),
        })
    };
    // The `--csv` contract is enforced structurally: exporting consumes the
    // parsed directory by value, so a call without the flag cannot compile
    // (this used to be a runtime `.expect`, i.e. a panic where the exit-code
    // contract promises usage errors → 2; flag conflicts are now rejected in
    // `parse_args` instead).
    let export_csv = |dir: &std::path::Path, fname: &str, bytes: Vec<u8>| -> BbResult<Vec<(String, Vec<u8>)>> {
        beating_bgp::core::export::write_atomic_bytes(&dir.join(fname), &bytes)?;
        Ok(vec![(fname.to_string(), bytes)])
    };
    type Exp<'a> = (&'static str, Box<dyn Fn() -> BbResult<UnitResult> + Sync + 'a>);
    let experiments: Vec<Exp> = vec![
        (
            "calib",
            Box::new(|| text(format!("{}\n", calibration::run(facebook()).render()))),
        ),
        (
            "fig1",
            Box::new(|| {
                let study = egress_study()?;
                let files = match &args.csv_dir {
                    Some(dir) => export_csv(dir, "fig1.csv", beating_bgp::core::export::fig1_csv_bytes(&study.fig1))?,
                    None => Vec::new(),
                };
                Ok(UnitResult {
                    stdout: format!("{}\n", study.fig1.render()),
                    files,
                })
            }),
        ),
        (
            "fig2",
            Box::new(|| {
                let study = egress_study()?;
                let files = match &args.csv_dir {
                    Some(dir) => export_csv(dir, "fig2.csv", beating_bgp::core::export::fig2_csv_bytes(&study.fig2))?,
                    None => Vec::new(),
                };
                Ok(UnitResult {
                    stdout: format!("{}\n", study.fig2.render()),
                    files,
                })
            }),
        ),
        (
            "s311",
            Box::new(|| {
                let study = egress_study()?;
                text(format!(
                    "{}\nS3.1 bandwidth: alternate improves goodput >=10% for {:.1}% of traffic \
                     (paper: \"qualitatively similar results for bandwidth\")\n\n",
                    study.episodes.render(),
                    study.bandwidth_improvable * 100.0
                ))
            }),
        ),
        (
            "fig3",
            Box::new(|| {
                let study = anycast_study()?;
                let files = match &args.csv_dir {
                    Some(dir) => export_csv(dir, "fig3.csv", beating_bgp::core::export::fig3_csv_bytes(&study.fig3))?,
                    None => Vec::new(),
                };
                Ok(UnitResult {
                    stdout: format!("{}\n", study.fig3.render()),
                    files,
                })
            }),
        ),
        (
            "fig4",
            Box::new(|| {
                let study = anycast_study()?;
                let files = match &args.csv_dir {
                    Some(dir) => export_csv(dir, "fig4.csv", beating_bgp::core::export::fig4_csv_bytes(&study.fig4))?,
                    None => Vec::new(),
                };
                Ok(UnitResult {
                    stdout: format!("{}\n", study.fig4.render()),
                    files,
                })
            }),
        ),
        (
            "fig5",
            Box::new(|| {
                let study = tiers_study()?;
                let files = match &args.csv_dir {
                    Some(dir) => export_csv(dir, "fig5.csv", beating_bgp::core::export::fig5_csv_bytes(&study.fig5))?,
                    None => Vec::new(),
                };
                Ok(UnitResult {
                    stdout: format!("{}\n", study.fig5.render()),
                    files,
                })
            }),
        ),
        (
            "goodput",
            Box::new(|| {
                text(format!(
                    "S4 goodput: weighted median 10MB transfer-time difference \
                     (standard - premium): {:+.2} s\n\n",
                    tiers_study()?.goodput_diff_s
                ))
            }),
        ),
        (
            "xonenet",
            Box::new(|| {
                let mut out =
                    String::from("X-ONENET (§3.3.2): latency inflation vs single-network share\n");
                for b in single_network::run(google(), None) {
                    writeln!(out, "{}", b.render_row()).unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xpeer",
            Box::new(|| {
                let mut out =
                    String::from("X-PEER (§3.1.3): reduced peering footprint sweep\n");
                let base = with_faults(ScenarioConfig::facebook(args.seed, args.scale));
                for step in peering_reduction::run(&base, &[0.05, 0.12, 0.3, 0.6, 1.1]) {
                    writeln!(out, "{}", step.render_row()).unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xgroom",
            Box::new(|| {
                let mut out =
                    String::from("X-GROOM (§3.2.2): grooming an ungroomed anycast prefix\n");
                let scenario = microsoft();
                for step in grooming::run(scenario, args.seed ^ 0x_9700, 12) {
                    writeln!(out, "{}", step.render_row()).unwrap();
                }
                let baseline = grooming::groomed_baseline(scenario);
                writeln!(out, "  fully-groomed baseline: {}", baseline.render_row()).unwrap();
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xsites",
            Box::new(|| {
                let mut out =
                    String::from("X-SITES (§3.2.2): anycast latency vs number of sites\n");
                for p in site_count::run(microsoft(), &[1, 2, 4, 8, 16, 32, 64]) {
                    writeln!(out, "{}", p.render_row()).unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xecs",
            Box::new(|| {
                let mut out =
                    String::from("X-ECS (§3.2.1): Fig 4 vs ISP EDNS-Client-Subnet adoption\n");
                for p in ecs::run(microsoft(), &BeaconConfig::default(), &[0.0, 0.25, 0.5, 1.0])? {
                    writeln!(out, "{}", p.render_row()).unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xavail",
            Box::new(|| {
                let r = availability::run(
                    microsoft(),
                    args.seed ^ 0x_a1a,
                    &availability::RecoveryConfig::default(),
                );
                text(format!("{}\n", r.render()))
            }),
        ),
        (
            "xhybrid",
            Box::new(|| {
                let mut out =
                    String::from("X-HYBRID (§4): anycast vs DNS vs hybrid vs oracle\n");
                for s in hybrid::run(microsoft(), &BeaconConfig::default(), 10.0) {
                    writeln!(out, "{}", s.render_row()).unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xfabric",
            Box::new(|| {
                // Reuse the egress study's spray dataset (same scenario,
                // same spray config) instead of re-running the campaign.
                let study = egress_study()?;
                let r = fabric::evaluate(&study.dataset, &EgressController::default());
                text(format!("{}\n", r.render()))
            }),
        ),
        (
            "xablate",
            Box::new(|| {
                let mut out =
                    String::from("X-ABLATE: modeling-mechanism ablations (quality deltas)\n");

                // (1) Correlated congestion: without shared destination-side
                // keys, performance-aware routing finds far more exploitable
                // windows — the pre-2010 literature's world.
                out.push_str("  [correlated congestion]\n");
                for (label, metro, lastmile, link) in [
                    ("correlated (default)", 0.10, 0.35, 0.25),
                    ("independent", 0.0, 0.0, 2.0),
                ] {
                    let mut cfg = with_faults(ScenarioConfig::facebook(args.seed, args.scale));
                    cfg.congestion.metro_events_per_day = metro;
                    cfg.congestion.lastmile_events_per_day = lastmile;
                    cfg.congestion.link_events_per_day = link;
                    if label == "independent" {
                        // Early-literature world: long, severe, route-specific
                        // congestion episodes.
                        cfg.congestion.event_duration_mean_min = 90.0;
                        cfg.congestion.event_severity = (0.35, 0.7);
                    }
                    let scenario = Scenario::try_build(cfg)?;
                    let study = study_egress::run(&scenario, &spray_cfg(args.scale))?;
                    writeln!(
                        out,
                        "    {label:<22} median-improvable>=5ms {:.1}%  windows-improvable {:.1}%  degrade-together {:.0}%",
                        study.fig1.frac_improvable_5ms * 100.0,
                        study.episodes.frac_windows_improvable * 100.0,
                        study.episodes.degrade_together * 100.0
                    )
                    .unwrap();
                }

                // (2) Exit fidelity: perfectly geographic exits kill most
                // anycast misdirection.
                out.push_str("  [exit fidelity]\n");
                for (label, factor) in [("sloppy (default)", 0.72_f64), ("perfect geo", 1.0)] {
                    let mut cfg = with_faults(ScenarioConfig::microsoft(args.seed, args.scale));
                    cfg.exit_fidelity_factor = factor;
                    let scenario = Scenario::try_build(cfg)?;
                    let study = study_anycast::run(
                        &scenario,
                        &BeaconConfig {
                            rounds: 4,
                            ..Default::default()
                        },
                    )?;
                    writeln!(
                        out,
                        "    {label:<22} anycast within 10ms {:.1}%  tail>=100ms {:.1}%",
                        study.fig3.frac_within_10ms * 100.0,
                        study.fig3.frac_gt_100ms * 100.0
                    )
                    .unwrap();
                }
                out.push('\n');
                text(out)
            }),
        ),
        (
            "xsplit",
            Box::new(|| {
                let mut out = String::from("X-SPLIT (§4): split-TCP backend comparison\n");
                let scenario = google();
                for bytes in [30e3, 300e3, 3e6] {
                    writeln!(out, "{}", split_tcp::run(scenario, bytes, None).render()).unwrap();
                }
                text(out)
            }),
        ),
    ];

    let selected: Vec<Exp> = experiments.into_iter().filter(|(n, _)| want(n)).collect();
    if selected.is_empty() {
        eprintln!("unknown experiment '{}' — try --help", args.experiment);
        std::process::exit(2);
    }
    let names: Vec<&'static str> = selected.iter().map(|(n, _)| *n).collect();
    // The orchestrator plans shard slices and chaos against
    // `EXPERIMENT_NAMES` without building the closures; the two lists must
    // stay identical, in the same order.
    if args.experiment == "all" {
        debug_assert_eq!(names, EXPERIMENT_NAMES, "EXPERIMENT_NAMES is out of date");
    }

    // --- Sharding: run one contiguous slice of the campaign. ---
    // The slice bounds are `[I·n/N, (I+1)·n/N)`, so the N slices tile the
    // list exactly. The campaign key (below) still names the FULL selected
    // list: every shard of one campaign carries an identical key, which is
    // what lets `repro merge` verify the manifests belong together and
    // that, combined, they cover everything.
    let shard_names: Vec<&'static str> = match args.shard {
        Some((idx, n)) => {
            let lo = idx * names.len() / n;
            let hi = (idx + 1) * names.len() / n;
            eprintln!(
                "[repro] shard {idx}/{n}: running {} of {} experiments: {}",
                hi - lo,
                names.len(),
                names[lo..hi].join(",")
            );
            names[lo..hi].to_vec()
        }
        None => names.clone(),
    };

    // --- Checkpoint / resume wiring. ---
    // The campaign key pins everything that feeds unit output; a manifest
    // whose key mismatches is rejected (exit 2), never silently reused.
    // `--resume DIR` implies continuing to checkpoint into DIR.
    let ckpt_dir = args.resume.clone().or_else(|| args.checkpoint.clone());
    let campaign_key = CampaignKey::new(
        args.seed,
        scale_label(args.scale),
        args.faults.as_str(),
        names.join(","),
        args.csv_dir.is_some(),
    );
    let mut replay: std::collections::BTreeMap<&'static str, UnitResult> =
        std::collections::BTreeMap::new();
    let ck_shared: Option<Arc<(std::path::PathBuf, Mutex<Checkpoint>)>> = match &ckpt_dir {
        None => None,
        Some(dir) => {
            install_signal_drain();
            let ck = if args.resume.is_some() {
                match Checkpoint::load_salvaging(dir).and_then(|(ck, salvage)| {
                    ck.validate(&campaign_key)?;
                    Ok((ck, salvage))
                }) {
                    Ok((ck, salvage)) => {
                        if let Some(s) = &salvage {
                            // A manifest torn by a crash mid-write is
                            // salvaged to its valid prefix; re-save it whole
                            // immediately, so a second crash before the
                            // first flush cannot tear the torn file further.
                            eprintln!("[repro] warning: checkpoint salvaged: {s}");
                            if let Err(e) = ck.save(dir) {
                                eprintln!(
                                    "[repro] warning: could not re-save salvaged checkpoint: {e}"
                                );
                            }
                        }
                        for name in &names {
                            if let Some(unit) = ck.get(name) {
                                replay.insert(name, unit.clone());
                            }
                        }
                        eprintln!(
                            "[repro] resuming: {}/{} experiments already completed in {}",
                            replay.len(),
                            names.len(),
                            dir.display()
                        );
                        ck
                    }
                    Err(e) => {
                        eprintln!("--resume: {e}");
                        std::process::exit(2);
                    }
                }
            } else {
                Checkpoint::new(campaign_key.clone())
            };
            Some(Arc::new((dir.clone(), Mutex::new(ck))))
        }
    };
    // Checkpoint writers fail *closed*: a flush that cannot land means the
    // manifest on disk is stale, and limping on would silently discard
    // completed experiments at the next resume. The atomic writer
    // guarantees the previous manifest is still whole, so exiting 1 here
    // (with the failing path in the message) loses at most the window
    // since the last successful flush — rerunning resumes from it.
    let flush = |shared: &(std::path::PathBuf, Mutex<Checkpoint>)| {
        let mut ck = shared.1.lock().unwrap_or_else(|e| e.into_inner());
        ck.windows_done = beating_bgp::measure::progress::windows_done();
        timing::time("checkpoint:flush", || {
            if let Err(e) = ck.save(&shared.0) {
                eprintln!("repro: checkpoint flush failed: {e}");
                eprintln!(
                    "repro: previous manifest in {} is intact; rerun with --resume \
                     after freeing space",
                    shared.0.display()
                );
                std::process::exit(1);
            }
        });
    };
    // Liveness heartbeat: a tiny progress record (`heartbeat.bbhb`)
    // rewritten atomically but *without* fsync — the orchestrator watches
    // its content for change to tell a slow shard from a hung one.
    // `units_done` counts finalized experiments, bumped in `on_final`
    // below. Like the manifest flush it fails closed: a heartbeat that
    // cannot be written is the same disk failure that will eat the next
    // manifest flush, and a clean exit 1 now (prior artifacts intact)
    // beats a torn write later.
    let units_done = Arc::new(AtomicUsize::new(0));
    let beat = {
        let units = Arc::clone(&units_done);
        move |shared: &(std::path::PathBuf, Mutex<Checkpoint>)| {
            let hb = Heartbeat::now(
                beating_bgp::measure::progress::windows_done(),
                units.load(Ordering::Relaxed) as u64,
            );
            timing::time("checkpoint:heartbeat", || {
                if let Err(e) = hb.save(&shared.0) {
                    eprintln!("repro: heartbeat write failed: {e}");
                    eprintln!(
                        "repro: checkpoint in {} is intact; rerun with --resume \
                         after freeing space",
                        shared.0.display()
                    );
                    std::process::exit(1);
                }
            });
        }
    };
    // Window-granular progress inside a study: every 2048 completed
    // measurement windows the heartbeat is refreshed (cheap: ~60 bytes, no
    // fsync), and every 32768 the full manifest is re-flushed, so even a
    // kill in the middle of one long experiment leaves a fresh manifest.
    // Without --checkpoint no hook is installed and the pipelines pay one
    // relaxed counter increment per window — nothing else. The flush
    // interval is sized so periodic flushes stay well under the 2%
    // wall-clock budget the bench smoke enforces (each flush rewrites and
    // fsyncs the whole manifest).
    if let Some(shared) = &ck_shared {
        // Startup heartbeat: the orchestrator sees liveness before the
        // first window completes (world-building can take a while).
        beat(shared);
        let s = Arc::clone(shared);
        let b = beat.clone();
        beating_bgp::measure::progress::set_hook(
            2_048,
            Arc::new(move |n| {
                b(&s);
                if n % 32_768 == 0 {
                    flush(&s);
                }
            }),
        );
    }

    // Experiments still to run (this shard's slice, minus anything already
    // replayed from a checkpoint).
    let run_list: Vec<Exp> = selected
        .iter()
        .filter(|(n, _)| !replay.contains_key(n) && shard_names.contains(n))
        .map(|(n, run)| {
            // Re-borrow the boxed closure; the original stays in `selected`.
            let run: &(dyn Fn() -> BbResult<UnitResult> + Sync) = run.as_ref();
            (*n, Box::new(move || run()) as Box<dyn Fn() -> BbResult<UnitResult> + Sync>)
        })
        .collect();

    // Test hooks: BB_REPRO_POISON=<name> makes that experiment panic on
    // every attempt (exercises isolation + --keep-going end to end);
    // BB_REPRO_POISON=<name>:<k> panics only the first k attempts, so the
    // supervised-retry recovery path can be driven deterministically.
    // BB_REPRO_UNIT_LIMIT=<n> cancels the campaign after n finalized
    // experiments — a deterministic stand-in for SIGTERM in tests.
    // BB_REPRO_CRASH=<n> hard-exits the process (code 101, like an escaped
    // panic) right after the n-th experiment is finalized and flushed — a
    // deterministic worker crash for the orchestrator's chaos plans.
    // BB_REPRO_STALL=<name>[:secs] sleeps that long (default 30s) before
    // running <name>, first attempt only — a deterministic hang, stale
    // heartbeat included, that a restarted attempt does not repeat.
    let poison = std::env::var("BB_REPRO_POISON").ok();
    let (poison_name, poison_attempts): (Option<String>, u32) = match poison {
        None => (None, 0),
        Some(spec) => match spec.split_once(':') {
            Some((name, k)) => (
                Some(name.to_string()),
                k.parse().unwrap_or_else(|_| {
                    eprintln!("BB_REPRO_POISON: bad attempt count in {spec:?}");
                    std::process::exit(2);
                }),
            ),
            None => (Some(spec), u32::MAX),
        },
    };
    let unit_limit: Option<usize> = std::env::var("BB_REPRO_UNIT_LIMIT")
        .ok()
        .and_then(|s| s.parse().ok());
    let crash_after: Option<usize> = std::env::var("BB_REPRO_CRASH").ok().map(|s| {
        s.parse().unwrap_or_else(|_| {
            eprintln!("BB_REPRO_CRASH: bad unit count {s:?}");
            std::process::exit(2);
        })
    });
    let stall: Option<(String, f64)> = std::env::var("BB_REPRO_STALL").ok().map(|spec| {
        match spec.split_once(':') {
            Some((name, secs)) => (
                name.to_string(),
                secs.parse().unwrap_or_else(|_| {
                    eprintln!("BB_REPRO_STALL: bad seconds in {spec:?}");
                    std::process::exit(2);
                }),
            ),
            None => (spec, 30.0),
        }
    });
    let finalized = AtomicUsize::new(0);
    let cancel = || {
        INTERRUPTED.load(Ordering::Relaxed)
            || unit_limit.is_some_and(|limit| finalized.load(Ordering::Relaxed) >= limit)
    };
    let on_final = |i: usize, outcome: &Result<BbResult<UnitResult>, _>| {
        if let (Ok(Ok(unit)), Some(shared)) = (outcome, &ck_shared) {
            {
                let mut ck = shared.1.lock().unwrap_or_else(|e| e.into_inner());
                ck.record(run_list[i].0, unit.clone());
            }
            units_done.fetch_add(1, Ordering::Relaxed);
            flush(shared);
            beat(shared);
            // The injected crash fires only after the unit was flushed, so
            // every crash leaves resumable progress behind — the property
            // the orchestrator's restart path depends on.
            if crash_after.is_some_and(|n| units_done.load(Ordering::Relaxed) >= n) {
                eprintln!(
                    "[repro] BB_REPRO_CRASH: simulated crash after {} finalized unit(s)",
                    units_done.load(Ordering::Relaxed)
                );
                std::process::exit(101);
            }
        }
        finalized.fetch_add(1, Ordering::Relaxed);
    };

    // Run concurrently under supervision, print in order: stdout bytes do
    // not depend on the worker count or the schedule, one experiment's
    // panic cannot take down its siblings, and a failed/panicked experiment
    // is retried (bounded, deterministic backoff) before being declared
    // dead. The deadline stays advisory (None): experiments are never
    // killed mid-flight, so cancellation is always a clean drain.
    let policy = supervisor::RetryPolicy {
        max_retries: 2,
        backoff_base: std::time::Duration::from_millis(50),
        retry_budget: 8,
        jitter_seed: args.seed,
    };
    // Per-experiment route-cache attribution: snapshot the process-wide
    // counters around each closure. At `--jobs 1` the deltas are exact; with
    // concurrent experiments the counters interleave, so a lookup lands on
    // whichever experiment was on the clock (documented in the report).
    let cache_deltas: Mutex<std::collections::BTreeMap<&'static str, (u64, u64)>> =
        Mutex::new(std::collections::BTreeMap::new());
    let (outcomes, sup_report) =
        supervisor::supervise(&run_list, &policy, None, &cancel, &on_final, |_, attempt, (name, run)| {
            if poison_name.as_deref() == Some(*name) && attempt < poison_attempts {
                panic!("poisoned by BB_REPRO_POISON (attempt {attempt})");
            }
            if let Some((stall_name, secs)) = &stall {
                if stall_name == name && attempt == 0 {
                    eprintln!("[repro] BB_REPRO_STALL: stalling {name} for {secs}s (attempt 0)");
                    std::thread::sleep(std::time::Duration::from_secs_f64(*secs));
                }
            }
            let (h0, m0, _) = beating_bgp::exec::cache_stats();
            let out = timing::time(&format!("exp:{name}"), run);
            let (h1, m1, _) = beating_bgp::exec::cache_stats();
            let mut map = cache_deltas.lock().unwrap_or_else(|e| e.into_inner());
            let entry = map.entry(*name).or_insert((0, 0));
            entry.0 += h1.saturating_sub(h0) as u64;
            entry.1 += m1.saturating_sub(m0) as u64;
            out
        });
    // Campaign output order, restricted to experiments that actually ran.
    let cache_by_exp: Vec<beating_bgp::bench::ExperimentCacheStats> = {
        let map = cache_deltas.lock().unwrap_or_else(|e| e.into_inner());
        names
            .iter()
            .filter_map(|n| {
                map.get(n).map(|&(hits, misses)| beating_bgp::bench::ExperimentCacheStats {
                    experiment: n.to_string(),
                    hits,
                    misses,
                })
            })
            .collect()
    };
    beating_bgp::measure::progress::reset();

    // A drain that skipped work means the campaign is incomplete: flush the
    // final manifest, say how to pick the run back up, and exit 130 with
    // NOTHING on stdout — partial stdout is worse than none, and the resume
    // path reproduces the full byte-identical output anyway.
    let interrupted = outcomes.iter().any(|o| o.is_none());
    if interrupted {
        match &ck_shared {
            Some(shared) => {
                flush(shared);
                let done = shared.1.lock().unwrap_or_else(|e| e.into_inner()).units.len();
                eprintln!("=== INTERRUPTED (resumable) ===");
                eprintln!(
                    "  completed {done}/{} experiments; checkpoint flushed to {}",
                    selected.len(),
                    shared.0.display()
                );
                let shard_suffix = args
                    .shard
                    .map(|(idx, n)| format!(" --shard {idx}/{n}"))
                    .unwrap_or_default();
                eprintln!(
                    "  resume with: repro {} --resume {} --seed {} --scale {} --faults {}{}",
                    args.experiment,
                    shared.0.display(),
                    args.seed,
                    scale_label(args.scale),
                    args.faults.as_str(),
                    shard_suffix
                );
                eprintln!("=== END INTERRUPTED ===");
            }
            None => {
                eprintln!("=== INTERRUPTED ===");
                eprintln!(
                    "  campaign stopped early with no --checkpoint directory; completed \
                     work was discarded"
                );
                eprintln!("=== END INTERRUPTED ===");
            }
        }
        std::process::exit(130);
    }

    // Assemble stdout in selection order: replayed units contribute their
    // cached bytes (and re-write their cached CSV files), fresh units
    // contribute what they just computed.
    let mut computed: std::collections::HashMap<&str, Result<BbResult<UnitResult>, _>> = run_list
        .iter()
        .map(|(n, _)| *n)
        .zip(outcomes)
        .map(|(n, o)| (n, o.expect("non-interrupted run finalizes every unit")))
        .collect();
    let mut stdout = String::new();
    let mut failures: Vec<(&str, String)> = Vec::new();
    for name in &shard_names {
        if let Some(unit) = replay.get(name) {
            stdout.push_str(&unit.stdout);
            if let Some(dir) = &args.csv_dir {
                for (fname, bytes) in &unit.files {
                    if let Err(e) =
                        beating_bgp::core::export::write_atomic_bytes(&dir.join(fname), bytes)
                    {
                        failures.push((name, format!("replaying cached export: {e}")));
                    }
                }
            }
            continue;
        }
        match computed.remove(name).expect("every selected unit ran or replayed") {
            Ok(Ok(unit)) => stdout.push_str(&unit.stdout),
            Ok(Err(e)) => failures.push((name, e.to_string())),
            Err(f) => failures.push((
                name,
                format!(
                    "panicked: {} (final attempt died after {:.3}s)",
                    f.message,
                    f.elapsed.as_secs_f64()
                ),
            )),
        }
    }

    // Diagnostics go to stderr so surviving experiments' stdout stays
    // byte-stable with or without failures elsewhere in the run.
    for (name, message) in &failures {
        eprintln!("=== EXPERIMENT FAILED: {name} ===");
        eprintln!("  {message}");
        eprintln!("  (seed {}, scale {:?}, faults {:?})", args.seed, args.scale, args.faults);
        eprintln!("=== END {name} ===");
    }
    if !failures.is_empty() && !args.keep_going {
        eprintln!(
            "{} of {} experiments failed; rerun with --keep-going to print survivors",
            failures.len(),
            shard_names.len()
        );
        std::process::exit(1);
    }
    // A shard's stdout is withheld: `repro merge` reassembles the campaign's
    // full output from the manifests, byte-identical to an unsharded run —
    // partial per-shard stdout would only invite accidental concatenation.
    if args.shard.is_none() {
        print!("{stdout}");
    } else if let Some(shared) = &ck_shared {
        eprintln!(
            "[repro] shard complete: {} experiment(s) checkpointed to {}; \
             stitch the shards with `repro merge`",
            shard_names.len(),
            shared.0.display()
        );
    }

    let wall_s = t0.elapsed().as_secs_f64();
    if args.timing {
        eprint!("{}", timing::report());
        if !cache_by_exp.is_empty() {
            eprintln!(
                "route cache by experiment (deltas{}):",
                if beating_bgp::exec::jobs() == 1 {
                    ""
                } else {
                    "; approximate under --jobs > 1"
                }
            );
            for e in &cache_by_exp {
                eprintln!(
                    "  {:<8} hits {:>6}  misses {:>6}  rate {:>5.1}%",
                    e.experiment,
                    e.hits,
                    e.misses,
                    e.hit_rate() * 100.0
                );
            }
        }
        eprintln!(
            "congestion races closed: {}",
            beating_bgp::netsim::materialize_races_closed()
        );
        eprintln!(
            "supervision: {} attempts, {} retries ({} recovered, {} failed, {} replayed)",
            sup_report.attempts,
            sup_report.retries,
            sup_report.count("recovered"),
            sup_report.count("failed"),
            replay.len()
        );
    }
    if let Some(path) = &args.timing_json {
        let report = perf_report(&args, wall_s, &sup_report, cache_by_exp.clone());
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("--timing-json: cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
    if !failures.is_empty() {
        // Partial run under --keep-going: survivors printed, but the run
        // as a whole did not reproduce everything asked of it.
        std::process::exit(1);
    }
}
