//! `repro` — regenerate every figure and statistic of the paper.
//!
//! ```text
//! repro [EXPERIMENT] [--scale test|full|large] [--seed N]
//!
//! EXPERIMENT: all (default) | fig1 | fig2 | s311 | fig3 | fig4 | fig5 |
//!             calib | goodput | xpeer | xgroom | xsites | xonenet | xsplit
//! ```

use beating_bgp::cdn::EgressController;
use beating_bgp::core::ext::{
    availability, ecs, fabric, grooming, hybrid, peering_reduction, single_network, site_count,
    split_tcp,
};
use beating_bgp::core::{calibration, study_anycast, study_egress, study_tiers};
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::{BeaconConfig, ProbeConfig, SprayConfig};

struct Args {
    experiment: String,
    scale: Scale,
    seed: u64,
    csv_dir: Option<std::path::PathBuf>,
}

fn parse_args() -> Args {
    let mut experiment = "all".to_string();
    let mut scale = Scale::Full;
    let mut seed = 42u64;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scale" => {
                i += 1;
                scale = match argv.get(i).map(String::as_str) {
                    Some("test") => Scale::Test,
                    Some("full") => Scale::Full,
                    Some("large") => Scale::Large,
                    other => {
                        eprintln!("unknown scale {other:?}; use test|full|large");
                        std::process::exit(2);
                    }
                };
            }
            "--seed" => {
                i += 1;
                seed = argv
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| {
                        eprintln!("--seed needs a number");
                        std::process::exit(2);
                    });
            }
            "--csv" => {
                i += 1;
                let dir = std::path::PathBuf::from(argv.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
                if let Err(e) = std::fs::create_dir_all(&dir) {
                    eprintln!("--csv: cannot create {}: {e}", dir.display());
                    std::process::exit(2);
                }
                csv_dir = Some(dir);
            }
            "--help" | "-h" => {
                println!(
                    "repro [EXPERIMENT] [--scale test|full|large] [--seed N] [--csv DIR]\n\
                     experiments: all fig1 fig2 s311 fig3 fig4 fig5 calib goodput \
                     xpeer xgroom xsites xonenet xsplit xablate xavail xhybrid xfabric xecs"
                );
                std::process::exit(0);
            }
            e => experiment = e.to_string(),
        }
        i += 1;
    }
    Args {
        experiment,
        scale,
        seed,
        csv_dir,
    }
}

fn spray_cfg(scale: Scale) -> SprayConfig {
    match scale {
        Scale::Test => SprayConfig {
            days: 1.0,
            window_stride: 8,
            ..Default::default()
        },
        Scale::Full => SprayConfig::default(),
        // Keep the Large run's row count comparable by sampling windows
        // more sparsely over the same ten days.
        Scale::Large => SprayConfig {
            window_stride: 8,
            ..Default::default()
        },
    }
}

fn main() {
    let args = parse_args();
    let want = |name: &str| args.experiment == "all" || args.experiment == name;
    let mut ran_any = false;

    // --- Study A: Facebook-like world (fig1, fig2, s311, calib, xpeer) ---
    if ["fig1", "fig2", "s311", "calib"].iter().any(|e| want(e)) {
        ran_any = true;
        eprintln!("[repro] building Facebook-like world…");
        let scenario = Scenario::build(ScenarioConfig::facebook(args.seed, args.scale));
        if want("calib") {
            println!("{}", calibration::run(&scenario).render());
        }
        if ["fig1", "fig2", "s311"].iter().any(|e| want(e)) {
            eprintln!("[repro] spraying sessions across egress routes…");
            let study = study_egress::run(&scenario, &spray_cfg(args.scale));
            if want("fig1") {
                println!("{}", study.fig1.render());
                if let Some(dir) = &args.csv_dir {
                    beating_bgp::core::export::fig1_csv(&study.fig1, dir).expect("fig1 csv");
                }
            }
            if want("fig2") {
                println!("{}", study.fig2.render());
                if let Some(dir) = &args.csv_dir {
                    beating_bgp::core::export::fig2_csv(&study.fig2, dir).expect("fig2 csv");
                }
            }
            if want("s311") {
                println!("{}", study.episodes.render());
                println!(
                    "S3.1 bandwidth: alternate improves goodput >=10% for {:.1}% of traffic \
                     (paper: \"qualitatively similar results for bandwidth\")\n",
                    study.bandwidth_improvable * 100.0
                );
            }
        }
    }

    // --- Study B: Microsoft-like world (fig3, fig4) ---
    if ["fig3", "fig4"].iter().any(|e| want(e)) {
        ran_any = true;
        eprintln!("[repro] building Microsoft-like world…");
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        eprintln!("[repro] running beacon campaign…");
        let study = study_anycast::run(&scenario, &BeaconConfig::default());
        if want("fig3") {
            println!("{}", study.fig3.render());
            if let Some(dir) = &args.csv_dir {
                beating_bgp::core::export::fig3_csv(&study.fig3, dir).expect("fig3 csv");
            }
        }
        if want("fig4") {
            println!("{}", study.fig4.render());
            if let Some(dir) = &args.csv_dir {
                beating_bgp::core::export::fig4_csv(&study.fig4, dir).expect("fig4 csv");
            }
        }
    }

    // --- Study C: Google-like world (fig5, goodput, xonenet) ---
    if ["fig5", "goodput", "xonenet"].iter().any(|e| want(e)) {
        ran_any = true;
        eprintln!("[repro] building Google-like world…");
        let scenario = Scenario::build(ScenarioConfig::google(args.seed, args.scale));
        if ["fig5", "goodput"].iter().any(|e| want(e)) {
            eprintln!("[repro] probing Premium/Standard tiers…");
            let study = study_tiers::run(&scenario, &ProbeConfig::default());
            if want("fig5") {
                println!("{}", study.fig5.render());
                if let Some(dir) = &args.csv_dir {
                    beating_bgp::core::export::fig5_csv(&study.fig5, dir).expect("fig5 csv");
                }
            }
            if want("goodput") {
                println!(
                    "S4 goodput: weighted median 10MB transfer-time difference \
                     (standard - premium): {:+.2} s\n",
                    study.goodput_diff_s
                );
            }
        }
        if want("xonenet") {
            println!("X-ONENET (§3.3.2): latency inflation vs single-network share");
            for b in single_network::run(&scenario, None) {
                println!("{}", b.render_row());
            }
            println!();
        }
    }

    // --- Extensions on their own worlds ---
    if want("xpeer") {
        ran_any = true;
        println!("X-PEER (§3.1.3): reduced peering footprint sweep");
        let base = ScenarioConfig::facebook(args.seed, args.scale);
        for step in peering_reduction::run(&base, &[0.05, 0.12, 0.3, 0.6, 1.1]) {
            println!("{}", step.render_row());
        }
        println!();
    }
    if want("xgroom") {
        ran_any = true;
        println!("X-GROOM (§3.2.2): grooming an ungroomed anycast prefix");
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        for step in grooming::run(&scenario, args.seed ^ 0x_9700, 12) {
            println!("{}", step.render_row());
        }
        let baseline = grooming::groomed_baseline(&scenario);
        println!("  fully-groomed baseline: {}", baseline.render_row());
        println!();
    }
    if want("xsites") {
        ran_any = true;
        println!("X-SITES (§3.2.2): anycast latency vs number of sites");
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        for p in site_count::run(&scenario, &[1, 2, 4, 8, 16, 32, 64]) {
            println!("{}", p.render_row());
        }
        println!();
    }
    if want("xecs") {
        ran_any = true;
        println!("X-ECS (§3.2.1): Fig 4 vs ISP EDNS-Client-Subnet adoption");
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        for p in ecs::run(
            &scenario,
            &BeaconConfig::default(),
            &[0.0, 0.25, 0.5, 1.0],
        ) {
            println!("{}", p.render_row());
        }
        println!();
    }
    if want("xavail") {
        ran_any = true;
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        let r = availability::run(&scenario, args.seed ^ 0x_a1a, &availability::RecoveryConfig::default());
        println!("{}", r.render());
    }
    if want("xhybrid") {
        ran_any = true;
        println!("X-HYBRID (§4): anycast vs DNS vs hybrid vs oracle");
        let scenario = Scenario::build(ScenarioConfig::microsoft(args.seed, args.scale));
        for s in hybrid::run(
            &scenario,
            &BeaconConfig::default(),
            10.0,
        ) {
            println!("{}", s.render_row());
        }
        println!();
    }
    if want("xfabric") {
        ran_any = true;
        let scenario = Scenario::build(ScenarioConfig::facebook(args.seed, args.scale));
        let r = fabric::run(&scenario, &spray_cfg(args.scale), &EgressController::default());
        println!("{}", r.render());
    }
    if want("xablate") {
        ran_any = true;
        println!("X-ABLATE: modeling-mechanism ablations (quality deltas)");

        // (1) Correlated congestion: without shared destination-side keys,
        // performance-aware routing finds far more exploitable windows —
        // the pre-2010 literature's world.
        println!("  [correlated congestion]");
        for (label, metro, lastmile, link) in
            [("correlated (default)", 0.10, 0.35, 0.25), ("independent", 0.0, 0.0, 2.0)]
        {
            let mut cfg = ScenarioConfig::facebook(args.seed, args.scale);
            cfg.congestion.metro_events_per_day = metro;
            cfg.congestion.lastmile_events_per_day = lastmile;
            cfg.congestion.link_events_per_day = link;
            if label == "independent" {
                // Early-literature world: long, severe, route-specific
                // congestion episodes.
                cfg.congestion.event_duration_mean_min = 90.0;
                cfg.congestion.event_severity = (0.35, 0.7);
            }
            let scenario = Scenario::build(cfg);
            let study = study_egress::run(&scenario, &spray_cfg(args.scale));
            println!(
                "    {label:<22} median-improvable>=5ms {:.1}%  windows-improvable {:.1}%  degrade-together {:.0}%",
                study.fig1.frac_improvable_5ms * 100.0,
                study.episodes.frac_windows_improvable * 100.0,
                study.episodes.degrade_together * 100.0
            );
        }

        // (2) Exit fidelity: perfectly geographic exits kill most anycast
        // misdirection.
        println!("  [exit fidelity]");
        for (label, factor) in [("sloppy (default)", 0.72_f64), ("perfect geo", 1.0)] {
            let mut cfg = ScenarioConfig::microsoft(args.seed, args.scale);
            cfg.exit_fidelity_factor = factor;
            let scenario = Scenario::build(cfg);
            let study = study_anycast::run(
                &scenario,
                &BeaconConfig {
                    rounds: 4,
                    ..Default::default()
                },
            );
            println!(
                "    {label:<22} anycast within 10ms {:.1}%  tail>=100ms {:.1}%",
                study.fig3.frac_within_10ms * 100.0,
                study.fig3.frac_gt_100ms * 100.0
            );
        }
        println!();
    }
    if want("xsplit") {
        ran_any = true;
        println!("X-SPLIT (§4): split-TCP backend comparison");
        let scenario = Scenario::build(ScenarioConfig::google(args.seed, args.scale));
        for bytes in [30e3, 300e3, 3e6] {
            println!("{}", split_tcp::run(&scenario, bytes, None).render());
        }
    }

    if !ran_any {
        eprintln!(
            "unknown experiment '{}' — try --help",
            args.experiment
        );
        std::process::exit(2);
    }
}
