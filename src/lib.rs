//! # beating-bgp
//!
//! A simulation-based reproduction of **"Beating BGP is Harder than we
//! Thought"** (Arnold et al., HotNets '19).
//!
//! The paper reads three provider-scale measurement studies side by side
//! and finds that performance-aware routing rarely beats plain BGP on
//! latency. This workspace rebuilds the entire measurement world as a
//! deterministic simulator — AS-level topology with business
//! relationships, Gao-Rexford BGP with announcement grooming, a geographic
//! latency + congestion plane, a content-provider substrate (PoPs, private
//! WAN, anycast, DNS redirection, Edge-Fabric-style egress control), and
//! the three measurement pipelines — and regenerates every figure and
//! in-text statistic of the paper, plus the extension experiments its open
//! questions call for.
//!
//! ## Quick start
//!
//! ```
//! use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
//! use beating_bgp::core::study_egress;
//! use beating_bgp::measure::SprayConfig;
//!
//! // Build a small world and run the §3.1 egress study.
//! let scenario = Scenario::build(ScenarioConfig::facebook(42, Scale::Test));
//! let cfg = SprayConfig { days: 0.5, window_stride: 8, ..Default::default() };
//! let study = study_egress::run(&scenario, &cfg).expect("fault-free study succeeds");
//! println!("{}", study.fig1.render());
//! assert!(study.fig1.frac_bgp_good > 0.5); // BGP is hard to beat
//! ```
//!
//! ## Crate map
//!
//! | re-export | crate | role |
//! |---|---|---|
//! | [`exec`] | `bb-exec` | deterministic parallel map, route cache, timing |
//! | [`geo`] | `bb-geo` | coordinates, world atlas, fiber delay |
//! | [`stats`] | `bb-stats` | weighted CDFs, quantiles, bootstrap CIs |
//! | [`topology`] | `bb-topology` | AS graph with typed interconnects |
//! | [`bgp`] | `bb-bgp` | Gao-Rexford propagation, decision process, RIBs |
//! | [`netsim`] | `bb-netsim` | path realization, congestion, RTT, goodput |
//! | [`workload`] | `bb-workload` | client prefixes, traffic, LDNS model |
//! | [`cdn`] | `bb-cdn` | provider: PoPs, WAN, anycast, DNS, egress, tiers |
//! | [`measure`] | `bb-measure` | spraying, beacons, vantage-point probes |
//! | [`core`] | `bb-core` | the three studies + extensions + figures |
//! | [`audit`] | `bb-audit` | invariant rules + metamorphic relations (`repro audit`) |
//! | [`bench`] | `bb-bench` | perf-report telemetry (`--timing-json`) |

pub use bb_audit as audit;
pub use bb_bench as bench;
pub use bb_bgp as bgp;
pub use bb_cdn as cdn;
pub use bb_core as core;
pub use bb_exec as exec;
pub use bb_geo as geo;
pub use bb_measure as measure;
pub use bb_netsim as netsim;
pub use bb_stats as stats;
pub use bb_topology as topology;
pub use bb_workload as workload;
