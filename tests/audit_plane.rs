//! `repro audit` end-to-end: the invariant rules pass on a clean build,
//! every seeded violation flips the exit code, and the report names the
//! rule that fired. The full 14-rule violation sweep runs in CI against
//! the release binary; here two representative hooks (one invariant rule,
//! one metamorphic relation) keep the debug-build cost bounded.

use std::process::Command;

fn audit(violate: Option<&str>) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(["audit", "--scale", "test", "--seed", "7", "--jobs", "1"]);
    match violate {
        Some(rule) => cmd.env("BB_AUDIT_VIOLATE", rule),
        None => cmd.env_remove("BB_AUDIT_VIOLATE"),
    };
    cmd.output().expect("spawn repro")
}

#[test]
fn clean_audit_passes_all_rules() {
    let out = audit(None);
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(0), "audit failed:\n{stdout}");
    assert!(
        stdout.contains("=== AUDIT PASSED: 14/14 rules"),
        "missing pass footer:\n{stdout}"
    );
    // Every rule in the catalog is present and reported ok.
    for rule in beating_bgp::audit::RULE_NAMES {
        assert!(stdout.contains(rule), "rule {rule} missing from report:\n{stdout}");
    }
    assert!(!stdout.contains("FAIL"), "clean audit reported a FAIL:\n{stdout}");
}

#[test]
fn seeded_invariant_violation_fails_the_audit() {
    let out = audit(Some("cdf.monotone"));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "expected exit 1:\n{stdout}");
    assert!(
        stdout.contains("cdf.monotone") && stdout.contains("FAIL"),
        "cdf.monotone did not fire:\n{stdout}"
    );
    assert!(stdout.contains("=== AUDIT FAILED"), "missing fail footer:\n{stdout}");
}

#[test]
fn seeded_metamorphic_violation_fails_the_audit() {
    let out = audit(Some("meta.faults_off"));
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert_eq!(out.status.code(), Some(1), "expected exit 1:\n{stdout}");
    assert!(
        stdout.contains("meta.faults_off") && stdout.contains("FAIL"),
        "meta.faults_off did not fire:\n{stdout}"
    );
}
