//! Kill-and-resume integration tests for the campaign checkpoint subsystem.
//!
//! The contract under test (ISSUE 4 acceptance criteria): a run stopped
//! mid-campaign and resumed with `--resume` produces stdout and CSV exports
//! **byte-identical** to an uninterrupted run at the same seed/scale — for
//! `--jobs 1` and `--jobs 4` alike — and a stale checkpoint (wrong seed,
//! scale, or schema version) is rejected with exit 2, never silently
//! reused.
//!
//! The mid-campaign stop uses `BB_REPRO_UNIT_LIMIT=<n>`, the deterministic
//! stand-in for SIGTERM: it flips the same cancel hook the signal handlers
//! set, so the drain/flush/exit-130 path is identical, without the races of
//! killing a half-started process from a test.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb_ckres_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn repro")
}

fn read_csvs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn kill_and_resume_is_byte_identical_across_job_counts() {
    for jobs in ["1", "4"] {
        let base = tmpdir(&format!("base_j{jobs}"));
        let clean_csv = base.join("clean-csv");
        let res_csv = base.join("res-csv");
        let ck = base.join("ck");
        std::fs::create_dir_all(&clean_csv).unwrap();
        std::fs::create_dir_all(&res_csv).unwrap();

        // Uninterrupted reference run.
        let clean = run(
            &[
                "all", "--scale", "test", "--seed", "42", "--jobs", jobs,
                "--csv", clean_csv.to_str().unwrap(),
            ],
            &[],
        );
        assert!(clean.status.success(), "clean run failed: {clean:?}");
        assert!(!clean.stdout.is_empty());

        // Same campaign, cancelled after 3 finalized experiments.
        let interrupted = run(
            &[
                "all", "--scale", "test", "--seed", "42", "--jobs", jobs,
                "--csv", res_csv.to_str().unwrap(),
                "--checkpoint", ck.to_str().unwrap(),
            ],
            &[("BB_REPRO_UNIT_LIMIT", "3")],
        );
        assert_eq!(
            interrupted.status.code(),
            Some(130),
            "interrupted run must exit 130: {interrupted:?}"
        );
        assert!(
            interrupted.stdout.is_empty(),
            "interrupted run must print nothing on stdout"
        );
        let stderr = String::from_utf8_lossy(&interrupted.stderr);
        assert!(
            stderr.contains("=== INTERRUPTED (resumable) ==="),
            "missing interrupt block:\n{stderr}"
        );
        assert!(ck.join("checkpoint.bbck").exists(), "manifest not flushed");
        assert!(
            !ck.join("checkpoint.bbck.tmp").exists(),
            "tmp file must not survive the atomic rename"
        );

        // Resume: replays completed units, runs the rest, byte-identical.
        let resumed = run(
            &[
                "all", "--scale", "test", "--seed", "42", "--jobs", jobs,
                "--csv", res_csv.to_str().unwrap(),
                "--resume", ck.to_str().unwrap(),
            ],
            &[],
        );
        assert!(resumed.status.success(), "resume failed: {resumed:?}");
        let resumed_err = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            resumed_err.contains("[repro] resuming:"),
            "resume must report replayed units:\n{resumed_err}"
        );
        assert_eq!(
            clean.stdout, resumed.stdout,
            "resumed stdout differs from uninterrupted run (jobs {jobs})"
        );
        let clean_files = read_csvs(&clean_csv);
        let resumed_files = read_csvs(&res_csv);
        assert_eq!(clean_files.len(), 5, "expected fig1..fig5 exports");
        assert_eq!(
            clean_files, resumed_files,
            "resumed CSV exports differ from uninterrupted run (jobs {jobs})"
        );

        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn resume_after_full_completion_is_pure_replay() {
    let base = tmpdir("fullreplay");
    let ck = base.join("ck");

    let first = run(
        &[
            "fig1", "--scale", "test", "--seed", "42",
            "--checkpoint", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert!(first.status.success(), "{first:?}");

    let replayed = run(
        &[
            "fig1", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert!(replayed.status.success(), "{replayed:?}");
    assert_eq!(first.stdout, replayed.stdout);
    let stderr = String::from_utf8_lossy(&replayed.stderr);
    assert!(
        !stderr.contains("building"),
        "pure replay must not rebuild any world:\n{stderr}"
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn stale_checkpoint_is_rejected_not_reused() {
    let base = tmpdir("stale");
    let ck = base.join("ck");

    let seeded = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--checkpoint", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert!(seeded.status.success(), "{seeded:?}");

    // Wrong seed.
    let wrong_seed = run(
        &[
            "calib", "--scale", "test", "--seed", "43",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(wrong_seed.status.code(), Some(2), "{wrong_seed:?}");
    assert!(wrong_seed.stdout.is_empty());
    let err = String::from_utf8_lossy(&wrong_seed.stderr);
    assert!(err.contains("seed mismatch"), "{err}");
    assert!(err.contains("stale"), "{err}");

    // Wrong scale.
    let wrong_scale = run(
        &[
            "calib", "--scale", "full", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(wrong_scale.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&wrong_scale.stderr).contains("scale mismatch"));

    // Wrong experiment selection.
    let wrong_exp = run(
        &[
            "fig1", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(wrong_exp.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&wrong_exp.stderr).contains("experiments mismatch"));

    // Wrong code-schema version: tamper the manifest's header line as a
    // stand-in for "written by an older build".
    let manifest = ck.join("checkpoint.bbck");
    let text = std::fs::read(&manifest).unwrap();
    let patched = String::from_utf8(text)
        .unwrap()
        .replacen("code_schema ", "code_schema 99", 1);
    std::fs::write(&manifest, patched).unwrap();
    let wrong_schema = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(wrong_schema.status.code(), Some(2), "{wrong_schema:?}");
    let err = String::from_utf8_lossy(&wrong_schema.stderr);
    assert!(err.contains("code_schema"), "{err}");

    // Truncated/corrupt manifest: also rejected, exit 2.
    std::fs::write(&manifest, b"bbck/v1\nseed 42\n").unwrap();
    let corrupt = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(corrupt.status.code(), Some(2), "{corrupt:?}");

    // Missing manifest directory.
    let missing = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--resume", base.join("nonexistent").to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(missing.status.code(), Some(2), "{missing:?}");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn zero_length_manifest_is_rejected_with_diagnosis() {
    let base = tmpdir("zerolen");
    let ck = base.join("ck");
    let seeded = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--checkpoint", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert!(seeded.status.success(), "{seeded:?}");

    // An atomic writer can never produce a 0-byte manifest, so this is
    // filesystem damage, not a torn tail — diagnosed, never salvaged.
    std::fs::write(ck.join("checkpoint.bbck"), b"").unwrap();
    let out = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("empty"), "{err}");
    assert!(err.contains("byte offset 0"), "{err}");
    assert!(err.contains("refusing to salvage"), "{err}");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn mid_file_corruption_is_rejected_with_byte_offset_not_salvaged() {
    let base = tmpdir("midcorrupt");
    let ck = base.join("ck");
    let seeded = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--checkpoint", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert!(seeded.status.success(), "{seeded:?}");

    // Flip one byte inside the first unit's stdout blob (just past its
    // `unit ...` record-header line). The bytes are all present, so this
    // is mid-file corruption: a checksum mismatch naming the blob's byte
    // offset, never a salvage of the damaged prefix.
    let manifest = ck.join("checkpoint.bbck");
    let mut bytes = std::fs::read(&manifest).unwrap();
    let rec = bytes
        .windows(6)
        .position(|w| w == b"\nunit ")
        .expect("manifest has a unit record");
    let blob_at = rec + 1 + bytes[rec + 1..].iter().position(|&b| b == b'\n').unwrap() + 1;
    bytes[blob_at + 2] ^= 0x20;
    std::fs::write(&manifest, &bytes).unwrap();

    let out = run(
        &[
            "calib", "--scale", "test", "--seed", "42",
            "--resume", ck.to_str().unwrap(),
        ],
        &[],
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checksum mismatch"), "{err}");
    assert!(err.contains(&format!("byte offset {blob_at}")), "{err}");
    assert!(err.contains("mid-file corruption"), "{err}");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn transient_poison_recovers_via_supervised_retry() {
    // fig5 panics on its first two attempts, succeeds on the third: the
    // supervisor absorbs both panics, and the final output is identical to
    // an unpoisoned run — retries are invisible in stdout.
    let clean = run(&["fig5", "--scale", "test", "--seed", "42"], &[]);
    assert!(clean.status.success(), "{clean:?}");

    let healed = run(
        &["fig5", "--scale", "test", "--seed", "42"],
        &[("BB_REPRO_POISON", "fig5:2")],
    );
    assert!(
        healed.status.success(),
        "retry should recover a transient poison: {healed:?}"
    );
    assert_eq!(clean.stdout, healed.stdout);

    // A persistent poison still fails after the retry budget.
    let dead = run(
        &["fig5", "--scale", "test", "--seed", "42"],
        &[("BB_REPRO_POISON", "fig5")],
    );
    assert_eq!(dead.status.code(), Some(1), "{dead:?}");
    let err = String::from_utf8_lossy(&dead.stderr);
    assert!(err.contains("=== EXPERIMENT FAILED: fig5 ==="), "{err}");
}

#[test]
fn interrupt_without_checkpoint_discards_and_says_so() {
    let out = run(
        &["all", "--scale", "test", "--seed", "42"],
        &[("BB_REPRO_UNIT_LIMIT", "1")],
    );
    assert_eq!(out.status.code(), Some(130), "{out:?}");
    assert!(out.stdout.is_empty());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("=== INTERRUPTED ==="), "{err}");
    assert!(!err.contains("resumable"), "{err}");
}
