//! Parallel execution must be bit-identical to sequential execution.
//!
//! The engine's contract (see `bb-exec`): every random draw is keyed on
//! `(seed, item)` and `par_map` merges results in input order, so the
//! worker count can never change a figure. This test runs the two
//! heavyweight studies at test scale under `--jobs 1` and `--jobs 4`
//! semantics and compares the exported CSV rows byte for byte.

use beating_bgp::core::{export, study_anycast, study_egress, Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::{BeaconConfig, SprayConfig};

fn read(dir: &std::path::Path, name: &str) -> String {
    std::fs::read_to_string(dir.join(name)).unwrap()
}

#[test]
fn fig1_and_fig3_identical_for_any_job_count() {
    let spray = SprayConfig {
        days: 1.0,
        window_stride: 8,
        ..Default::default()
    };

    let mut outputs: Vec<(String, String)> = Vec::new();
    for jobs in [1usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "bb_determinism_j{jobs}_{}",
            std::process::id()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        beating_bgp::exec::set_jobs(jobs);

        let facebook = Scenario::build(ScenarioConfig::facebook(42, Scale::Test));
        let egress = study_egress::run(&facebook, &spray).unwrap();
        export::fig1_csv(&egress.fig1, &dir).unwrap();

        let microsoft = Scenario::build(ScenarioConfig::microsoft(42, Scale::Test));
        let anycast = study_anycast::run(&microsoft, &BeaconConfig::default()).unwrap();
        export::fig3_csv(&anycast.fig3, &dir).unwrap();

        outputs.push((read(&dir, "fig1.csv"), read(&dir, "fig3.csv")));
    }
    beating_bgp::exec::set_jobs(0);

    let (fig1_seq, fig3_seq) = &outputs[0];
    let (fig1_par, fig3_par) = &outputs[1];
    assert!(fig1_seq.lines().count() > 10, "fig1 export is non-trivial");
    assert!(fig3_seq.lines().count() > 10, "fig3 export is non-trivial");
    assert_eq!(fig1_seq, fig1_par, "fig1 rows differ between jobs=1 and jobs=4");
    assert_eq!(fig3_seq, fig3_par, "fig3 rows differ between jobs=1 and jobs=4");
}

/// The plan-compilation layer must not reintroduce schedule dependence:
/// spray rows — whose RTTs all flow through compiled `PathPlan`s built
/// inside `par_map` — are identical for jobs=1 and jobs=4. Rows are
/// compared via `Debug`, which prints f64 with round-trip precision, so
/// equality here is bit-equality of every median/utilization/volume.
#[test]
fn spray_rows_with_planned_paths_identical_across_job_counts() {
    let cfg = SprayConfig {
        days: 0.5,
        window_stride: 8,
        ..Default::default()
    };
    let scenario = Scenario::build(ScenarioConfig::facebook(7, Scale::Test));

    let mut runs: Vec<String> = Vec::new();
    for jobs in [1usize, 4] {
        beating_bgp::exec::set_jobs(jobs);
        let ds = beating_bgp::measure::spray(
            &scenario.topo,
            &scenario.provider,
            &scenario.workload,
            &scenario.congestion,
            None,
            &cfg,
        );
        assert!(!ds.rows.is_empty(), "spray produced no rows");
        runs.push(format!("{:?}", ds.rows));
    }
    beating_bgp::exec::set_jobs(0);

    assert_eq!(
        runs[0], runs[1],
        "planned-path spray rows differ between jobs=1 and jobs=4"
    );
}
