//! Deterministic disk-full injection (`BB_REPRO_ENOSPC=<n>`): the n-th
//! atomic write of the process fails with an injected ENOSPC *before*
//! anything touches the filesystem. Every durable writer — CSV exports,
//! checkpoint manifests, heartbeats, serve snapshots — must fail closed:
//! exit 1, the failing path named on stderr, the previous artifact intact,
//! and no `.tmp` sibling left behind. A malformed count is a usage error
//! (exit 2) at startup, and the orchestrator scrubs the hook from its
//! children so a parent-level injection never cascades into shards.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb_enospc_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str], env: &[(&str, &str)]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    cmd.env_remove("BB_REPRO_ENOSPC");
    for (k, v) in env {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn repro")
}

fn no_tmp_files(dir: &Path) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        assert!(
            path.extension().is_none_or(|x| x != "tmp"),
            "stray temp file survived the failed write: {}",
            path.display()
        );
    }
}

#[test]
fn csv_export_enospc_fails_closed() {
    let base = tmpdir("csv");
    let csv = base.join("csv");
    std::fs::create_dir_all(&csv).unwrap();
    let out = run(
        &["fig1", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--csv", csv.to_str().unwrap()],
        &[("BB_REPRO_ENOSPC", "1")],
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("fig1.csv"), "failing path not named:\n{err}");
    assert!(err.contains("No space left on device"), "{err}");
    assert!(!csv.join("fig1.csv").exists(), "partial export must not exist");
    no_tmp_files(&csv);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn checkpoint_flush_enospc_fails_closed_then_resumes_identically() {
    let base = tmpdir("ckpt");
    let ck = base.join("ck");

    let clean = run(&["all", "--scale", "test", "--seed", "42", "--jobs", "1"], &[]);
    assert!(clean.status.success(), "{clean:?}");

    // Trip the third atomic write: the first manifest flush has already
    // landed, so the fail-closed contract has a prior artifact to protect.
    let tripped = run(
        &["all", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--checkpoint", ck.to_str().unwrap()],
        &[("BB_REPRO_ENOSPC", "3")],
    );
    assert_eq!(tripped.status.code(), Some(1), "{tripped:?}");
    let err = String::from_utf8_lossy(&tripped.stderr);
    assert!(err.contains("No space left on device"), "{err}");
    assert!(err.contains(&ck.display().to_string()), "failing dir not named:\n{err}");
    assert!(ck.join("checkpoint.bbck").exists(), "prior manifest must survive");
    no_tmp_files(&ck);

    // The surviving manifest is genuinely resumable once space frees up.
    let resumed = run(
        &["all", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--resume", ck.to_str().unwrap()],
        &[],
    );
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(clean.stdout, resumed.stdout, "resume after ENOSPC diverged");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn serve_snapshot_enospc_fails_closed_with_empty_dir() {
    let base = tmpdir("snap");
    let dir = base.join("sd");
    // Write #1 is the first epoch's snapshot: nothing must land at all.
    let out = run(
        &["serve", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--windows", "16", "--epoch", "8", "--dir", dir.to_str().unwrap()],
        &[("BB_REPRO_ENOSPC", "1")],
    );
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("snapshot flush failed"), "{err}");
    assert!(err.contains("snapshot.bbsn"), "failing path not named:\n{err}");
    assert!(err.contains("rerun the same command to resume"), "{err}");
    assert!(!dir.join("snapshot.bbsn").exists());
    no_tmp_files(&dir);
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn serve_heartbeat_enospc_fails_closed_then_resumes_identically() {
    let base = tmpdir("beat");
    let dir = base.join("sd");

    let clean = run(
        &["serve", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--windows", "16", "--epoch", "8",
          "--dir", base.join("clean").to_str().unwrap()],
        &[],
    );
    assert!(clean.status.success(), "{clean:?}");

    // Write #1 is epoch 1's snapshot, write #2 its heartbeat: the snapshot
    // survives the heartbeat failure and seeds the resume.
    let tripped = run(
        &["serve", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--windows", "16", "--epoch", "8", "--dir", dir.to_str().unwrap()],
        &[("BB_REPRO_ENOSPC", "2")],
    );
    assert_eq!(tripped.status.code(), Some(1), "{tripped:?}");
    let err = String::from_utf8_lossy(&tripped.stderr);
    assert!(err.contains("heartbeat write failed"), "{err}");
    assert!(dir.join("snapshot.bbsn").exists(), "epoch snapshot must survive");
    no_tmp_files(&dir);

    let resumed = run(
        &["serve", "--scale", "test", "--seed", "42", "--jobs", "1",
          "--windows", "16", "--epoch", "8", "--dir", dir.to_str().unwrap()],
        &[],
    );
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(clean.stdout, resumed.stdout, "resume after ENOSPC diverged");

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn malformed_enospc_count_is_a_usage_error_even_without_writes() {
    // `fig1` without --csv performs no atomic writes; the hook must still
    // be validated eagerly at startup rather than silently ignored.
    let out = run(
        &["fig1", "--scale", "test", "--seed", "42"],
        &[("BB_REPRO_ENOSPC", "banana")],
    );
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("BB_REPRO_ENOSPC") && err.contains("banana"), "{err}");
}

#[test]
fn orchestrator_scrubs_the_injection_from_children() {
    let base = tmpdir("orch");
    let clean = run(
        &["orchestrate", "2", "--scale", "test", "--seed", "42",
          "--dir", base.join("a").to_str().unwrap()],
        &[],
    );
    assert!(clean.status.success(), "{clean:?}");

    // Were the hook inherited, every child's first flush would die; the
    // parent itself performs no atomic writes, so the run must complete
    // with byte-identical output.
    let scrubbed = run(
        &["orchestrate", "2", "--scale", "test", "--seed", "42",
          "--dir", base.join("b").to_str().unwrap()],
        &[("BB_REPRO_ENOSPC", "1")],
    );
    assert!(scrubbed.status.success(), "{scrubbed:?}");
    assert_eq!(clean.stdout, scrubbed.stdout, "injection leaked into shards");

    std::fs::remove_dir_all(&base).ok();
}
