//! The fault plane end to end: determinism, preserved headline shapes,
//! and graceful degradation of a poisoned experiment.
//!
//! Everything here drives the `repro` binary the way a user would, because
//! the contracts under test are command-line contracts: `--faults` output
//! is byte-identical across `--jobs`, `--faults off` is the byte-identical
//! default, and `--keep-going` turns a panicking experiment into a
//! diagnostic plus a nonzero exit instead of a dead run.

use std::process::Command;

fn repro(args: &[&str], envs: &[(&str, &str)]) -> std::process::Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_repro"));
    cmd.args(args);
    for (k, v) in envs {
        cmd.env(k, v);
    }
    cmd.output().expect("spawn repro")
}

/// (a) Faulted runs are as deterministic as fault-free ones: same seed and
/// level → byte-identical stdout for every worker count.
#[test]
fn faulted_runs_identical_across_job_counts() {
    let run = |jobs: &str| {
        let out = repro(
            &[
                "all", "--scale", "test", "--seed", "42", "--faults", "light", "--jobs", jobs,
            ],
            &[],
        );
        assert!(out.status.success(), "jobs={jobs}: {:?}", out.status);
        out.stdout
    };
    let seq = run("1");
    let par = run("4");
    assert!(!seq.is_empty());
    assert_eq!(
        seq, par,
        "faulted stdout differs between --jobs 1 and --jobs 4"
    );
}

/// `--faults off` must not merely be similar to the default — it must be
/// the byte-identical default.
#[test]
fn faults_off_is_byte_identical_to_no_flag() {
    let base = repro(&["fig1", "--scale", "test", "--seed", "9"], &[]);
    let off = repro(
        &["fig1", "--scale", "test", "--seed", "9", "--faults", "off"],
        &[],
    );
    assert!(base.status.success() && off.status.success());
    assert_eq!(base.stdout, off.stdout);
}

/// (b) The paper's headline shapes survive light faults: Figure 1 still
/// shows BGP-preferred-route dominance and Figure 3 still shows the CCDF
/// head/tail ordering, with the degradation disclosed in a coverage note.
#[test]
fn light_faults_preserve_headline_shapes() {
    let out = repro(
        &[
            "all", "--scale", "test", "--seed", "42", "--faults", "light",
        ],
        &[],
    );
    assert!(out.status.success(), "light-faulted run failed");
    let stdout = String::from_utf8(out.stdout).unwrap();

    // Fig 1: BGP within 1 ms of best alternate for the vast majority.
    let bgp_good = extract_pct(&stdout, "BGP within 1ms-or-better: ");
    assert!(
        bgp_good > 70.0,
        "fig1 preferred-route dominance lost under light faults: {bgp_good}%"
    );
    let improvable = extract_pct(&stdout, "improvable by >=5ms: ");
    assert!(
        improvable < 25.0,
        "fig1 improvable tail exploded under light faults: {improvable}%"
    );

    // Fig 3: anycast near-optimal for most requests, small ≥100 ms tail —
    // the CCDF ordering (head fraction > tail fraction).
    let within = extract_pct(&stdout, "anycast within 10ms of best unicast: ");
    let tail = extract_pct(&stdout, "best unicast >=100ms faster: ");
    assert!(
        within > 50.0 && tail < within,
        "fig3 CCDF ordering lost under light faults: within={within}% tail={tail}%"
    );

    // The degradation is disclosed, not silently averaged over.
    assert!(
        stdout.contains("partial data"),
        "light-faulted figures carry no coverage annotation"
    );
}

/// (c) A poisoned experiment degrades gracefully under `--keep-going`:
/// survivors print byte-identically to an unpoisoned run, the failure gets
/// a diagnostic block on stderr, and the exit code is the documented 1.
#[test]
fn poisoned_experiment_degrades_gracefully() {
    let clean = repro(&["all", "--scale", "test", "--seed", "5"], &[]);
    assert!(clean.status.success());
    let clean_stdout = String::from_utf8(clean.stdout).unwrap();

    let poisoned = repro(
        &["all", "--scale", "test", "--seed", "5", "--keep-going"],
        &[("BB_REPRO_POISON", "fig5")],
    );
    assert_eq!(
        poisoned.status.code(),
        Some(1),
        "partial run must exit 1, not {:?}",
        poisoned.status.code()
    );
    let stdout = String::from_utf8(poisoned.stdout).unwrap();
    let stderr = String::from_utf8(poisoned.stderr).unwrap();

    // Diagnostic block names the failed experiment.
    assert!(stderr.contains("=== EXPERIMENT FAILED: fig5 ==="), "{stderr}");
    assert!(stderr.contains("=== END fig5 ==="), "{stderr}");

    // Survivors are byte-stable: poisoned stdout is exactly the clean
    // stdout minus the poisoned experiment's chunk.
    let fig5_chunk_start = clean_stdout.find("Figure 5").expect("clean run has fig5");
    assert!(!stdout.contains("Figure 5"), "poisoned fig5 still printed");
    assert!(stdout.contains("Figure 1"), "fig1 did not survive");
    assert!(stdout.contains("Figure 3"), "fig3 did not survive");
    // Everything before fig5's chunk is untouched.
    assert!(
        stdout.starts_with(&clean_stdout[..fig5_chunk_start]),
        "survivor output preceding the poisoned chunk is not byte-stable"
    );
}

/// Without `--keep-going` a poisoned run prints no figures at all and
/// still exits 1 with the diagnostic.
#[test]
fn poisoned_run_without_keep_going_prints_nothing() {
    let poisoned = repro(
        &["fig1", "--scale", "test", "--seed", "5"],
        &[("BB_REPRO_POISON", "fig1")],
    );
    assert_eq!(poisoned.status.code(), Some(1));
    assert!(poisoned.stdout.is_empty(), "failed run must not print partial stdout");
    let stderr = String::from_utf8(poisoned.stderr).unwrap();
    assert!(stderr.contains("=== EXPERIMENT FAILED: fig1 ==="), "{stderr}");
}

/// Pull the percentage that follows `label` in the rendered output.
fn extract_pct(stdout: &str, label: &str) -> f64 {
    let start = stdout
        .find(label)
        .unwrap_or_else(|| panic!("label {label:?} not in output:\n{stdout}"))
        + label.len();
    let rest = &stdout[start..];
    let end = rest.find('%').unwrap_or_else(|| panic!("no %% after {label:?}"));
    rest[..end]
        .trim()
        .parse()
        .unwrap_or_else(|e| panic!("bad number after {label:?}: {e}"))
}
