//! Harness error paths: every usage error exits 2 with a one-line
//! diagnostic on stderr and prints nothing on stdout.

use std::process::Command;

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(args)
        .output()
        .expect("spawn repro")
}

fn assert_usage_error(args: &[&str], expect_in_stderr: &str) {
    let out = repro(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, got {:?}",
        out.status.code()
    );
    assert!(out.stdout.is_empty(), "{args:?} printed to stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains(expect_in_stderr),
        "{args:?} stderr missing {expect_in_stderr:?}:\n{stderr}"
    );
    // One-line diagnostic: users should not get a wall of text for a typo.
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} diagnostic is not one line:\n{stderr}"
    );
}

#[test]
fn bad_scale_exits_2() {
    assert_usage_error(&["fig1", "--scale", "huge"], "unknown scale");
    assert_usage_error(&["fig1", "--scale"], "unknown scale");
}

#[test]
fn bad_seed_exits_2() {
    assert_usage_error(&["fig1", "--seed", "notanumber"], "--seed needs a number");
    assert_usage_error(&["fig1", "--seed", "-3"], "--seed needs a number");
    assert_usage_error(&["fig1", "--seed"], "--seed needs a number");
}

#[test]
fn bad_jobs_exits_2() {
    assert_usage_error(&["fig1", "--jobs", "many"], "--jobs needs a number");
}

#[test]
fn bad_faults_level_exits_2() {
    assert_usage_error(&["fig1", "--faults", "catastrophic"], "unknown fault level");
    assert_usage_error(&["fig1", "--faults"], "unknown fault level");
}

#[test]
fn unwritable_csv_dir_exits_2() {
    // A path that nests under a regular file can never be created.
    let blocker = std::env::temp_dir().join(format!("bb_csv_blocker_{}", std::process::id()));
    std::fs::write(&blocker, b"not a directory").unwrap();
    let target = blocker.join("sub");
    let out = repro(&[
        "fig1",
        "--scale",
        "test",
        "--csv",
        target.to_str().unwrap(),
    ]);
    std::fs::remove_file(&blocker).ok();
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status.code());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--csv: cannot create"), "{stderr}");
}

#[test]
fn unknown_experiment_exits_2() {
    assert_usage_error(&["figx"], "unknown experiment 'figx'");
}

#[test]
fn conflicting_checkpoint_and_resume_exits_2() {
    // Silently preferring one directory over the other loses checkpoints;
    // disagreeing flags are a usage error, not a precedence rule.
    assert_usage_error(
        &["all", "--checkpoint", "/tmp/bb_ck_a", "--resume", "/tmp/bb_ck_b"],
        "conflicts with --resume",
    );
}

#[test]
fn audit_with_checkpoint_or_resume_exits_2() {
    assert_usage_error(
        &["audit", "--checkpoint", "/tmp/bb_ck_a"],
        "does not support --checkpoint/--resume",
    );
    assert_usage_error(
        &["audit", "--resume", "/tmp/bb_ck_a"],
        "does not support --checkpoint/--resume",
    );
}

#[test]
fn unknown_audit_violate_rule_exits_2() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["audit", "--scale", "test"])
        .env("BB_AUDIT_VIOLATE", "no.such.rule")
        .output()
        .expect("spawn repro");
    assert_eq!(out.status.code(), Some(2), "{:?}", out.status.code());
    assert!(out.stdout.is_empty(), "printed to stdout");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(
        stderr.contains("unknown rule \"no.such.rule\""),
        "stderr missing rule diagnostic:\n{stderr}"
    );
}
