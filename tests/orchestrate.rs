//! Self-healing orchestrator integration tests.
//!
//! The contract under test (ISSUE 8 acceptance criteria): `repro
//! orchestrate N` spawns N shard processes and — through crashes, hangs,
//! and torn checkpoint manifests — produces stdout **byte-identical** to
//! the unsharded run at the same seed/scale. Chaos is deterministic
//! (seed-keyed), recovery is bounded (per-shard restarts + campaign
//! budget), and permanent failure exits 1 with the surviving shards'
//! checkpoints intact.

use std::path::PathBuf;
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb_orchtest_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    cmd.output().expect("spawn repro")
}

/// Extract an unsigned counter from the flat perf-report JSON. Naive by
/// design: the report layout is our own (`"key": value`).
fn json_u64(text: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = text.find(&pat).unwrap_or_else(|| panic!("{key} missing in {text}"));
    text[at + pat.len()..]
        .chars()
        .take_while(|c| c.is_ascii_digit())
        .collect::<String>()
        .parse()
        .unwrap_or_else(|_| panic!("{key} not a number"))
}

#[test]
fn chaos_light_crash_is_restarted_and_output_is_byte_identical() {
    let base = tmpdir("light");
    let clean = run(&["all", "--scale", "test", "--seed", "42"]);
    assert!(clean.status.success());

    let json = base.join("orch.json");
    let orch = run(&[
        "orchestrate", "3", "--scale", "test", "--seed", "42",
        "--dir", base.join("shards").to_str().unwrap(),
        "--chaos", "light",
        "--timing-json", json.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&orch.stderr);
    assert!(orch.status.success(), "orchestrate failed:\n{stderr}");
    assert_eq!(orch.stdout, clean.stdout, "merged stdout differs from unsharded run");

    let report = std::fs::read_to_string(&json).unwrap();
    assert!(json_u64(&report, "restarts") >= 1, "light chaos must force a restart:\n{report}");
    assert!(json_u64(&report, "crashes_detected") >= 1, "{report}");
    assert_eq!(json_u64(&report, "hangs_detected"), 0, "light chaos never stalls:\n{report}");
    assert!(report.contains("\"outcome\": \"completed\""), "{report}");
}

#[test]
fn chaos_heavy_hang_and_torn_manifest_are_recovered() {
    let base = tmpdir("heavy");
    let clean = run(&["all", "--scale", "test", "--seed", "42"]);
    assert!(clean.status.success());

    let json = base.join("orch.json");
    let orch = run(&[
        "orchestrate", "3", "--scale", "test", "--seed", "42",
        "--dir", base.join("shards").to_str().unwrap(),
        "--chaos", "heavy", "--hang-timeout", "2",
        "--timing-json", json.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&orch.stderr);
    assert!(orch.status.success(), "orchestrate failed:\n{stderr}");
    assert_eq!(orch.stdout, clean.stdout, "merged stdout differs from unsharded run");

    // Heavy chaos guarantees one stalled shard (killed via stale
    // heartbeat), crashed siblings, and one torn manifest (salvaged).
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(json_u64(&report, "hangs_detected") >= 1, "{report}");
    assert!(json_u64(&report, "crashes_detected") >= 1, "{report}");
    assert!(json_u64(&report, "salvages") >= 1, "heavy chaos must exercise salvage:\n{report}");
    assert!(stderr.contains("will salvage"), "salvage diagnosis missing:\n{stderr}");
}

#[test]
fn orchestrated_output_is_byte_identical_across_job_counts() {
    let clean = run(&["all", "--scale", "test", "--seed", "42"]);
    assert!(clean.status.success());
    for jobs in ["1", "4"] {
        let base = tmpdir(&format!("jobs{jobs}"));
        let orch = run(&[
            "orchestrate", "2", "--scale", "test", "--seed", "42",
            "--jobs", jobs,
            "--dir", base.join("shards").to_str().unwrap(),
        ]);
        assert!(
            orch.status.success(),
            "orchestrate --jobs {jobs} failed:\n{}",
            String::from_utf8_lossy(&orch.stderr)
        );
        assert_eq!(orch.stdout, clean.stdout, "merged stdout differs at --jobs {jobs}");
    }
}

#[test]
fn exhausted_restarts_exit_1_and_keep_surviving_shards() {
    let base = tmpdir("budget");
    let shards = base.join("shards");
    std::fs::create_dir_all(&shards).unwrap();
    // A plain file where shard 0's directory must go: every spawn attempt
    // fails, so the shard burns its full restart allowance and is declared
    // failed — the campaign must exit 1, not hang and not merge.
    std::fs::write(shards.join("shard0"), b"not a directory").unwrap();

    let json = base.join("orch.json");
    let orch = run(&[
        "orchestrate", "2", "--scale", "test", "--seed", "42",
        "--dir", shards.to_str().unwrap(),
        "--timing-json", json.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&orch.stderr);
    assert_eq!(orch.status.code(), Some(1), "want exit 1:\n{stderr}");
    assert!(orch.stdout.is_empty(), "failed campaign must print no stdout");
    assert!(stderr.contains("did not complete"), "{stderr}");

    // Bounded retries: first launch + 3 restarts, then permanent failure.
    let report = std::fs::read_to_string(&json).unwrap();
    assert!(report.contains("\"outcome\": \"failed\""), "{report}");
    assert!(json_u64(&report, "crashes_detected") >= 4, "{report}");
    // The healthy shard's checkpoint survives for a later resume.
    assert!(
        shards.join("shard1").join("checkpoint.bbck").exists(),
        "surviving shard's checkpoint must be kept"
    );
}

#[test]
fn merge_report_diagnoses_torn_and_healthy_shards() {
    let base = tmpdir("report");
    let mut dirs: Vec<PathBuf> = Vec::new();
    for i in 0..2 {
        let dir = base.join(format!("shard{i}"));
        let shard = run(&[
            "all", "--scale", "test", "--seed", "42",
            "--shard", &format!("{i}/2"),
            "--checkpoint", dir.to_str().unwrap(),
        ]);
        assert!(shard.status.success());
        dirs.push(dir);
    }

    // Healthy set first: --report prints per-shard status and still merges.
    let ok = run(&[
        "merge", dirs[0].to_str().unwrap(), dirs[1].to_str().unwrap(), "--report",
    ]);
    let stderr = String::from_utf8_lossy(&ok.stderr);
    assert!(ok.status.success(), "{stderr}");
    assert!(stderr.contains("merge report"), "{stderr}");
    assert!(stderr.contains("all 18 experiments covered"), "{stderr}");

    // Tear shard 1's manifest: --report must name the salvage and the
    // now-missing experiments before the exit-2, instead of a bare error.
    let manifest = dirs[1].join("checkpoint.bbck");
    let bytes = std::fs::read(&manifest).unwrap();
    std::fs::write(&manifest, &bytes[..bytes.len() - 16]).unwrap();
    let torn = run(&[
        "merge", dirs[0].to_str().unwrap(), dirs[1].to_str().unwrap(), "--report",
    ]);
    let stderr = String::from_utf8_lossy(&torn.stderr);
    assert_eq!(torn.status.code(), Some(2), "{stderr}");
    assert!(stderr.contains("SALVAGED"), "{stderr}");
    assert!(stderr.contains("campaign: missing"), "{stderr}");
    // Without --report the same set still fails with the plain first-error
    // message (the manifest on disk is torn; strict load rejects it).
    let plain = run(&["merge", dirs[0].to_str().unwrap(), dirs[1].to_str().unwrap()]);
    assert_eq!(plain.status.code(), Some(2));
}

#[test]
fn interrupted_orchestrate_resumes_to_identical_output() {
    let base = tmpdir("resume");
    let clean = run(&["all", "--scale", "test", "--seed", "42"]);
    assert!(clean.status.success());

    // First pass: heavy chaos, cut short by SIGTERM partway through.
    // (Kill the supervisor mid-campaign; children are killed with it.)
    let mut child = repro()
        .args([
            "orchestrate", "3", "--scale", "test", "--seed", "42",
            "--dir", base.join("shards").to_str().unwrap(),
            "--chaos", "heavy", "--hang-timeout", "2",
        ])
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null())
        .spawn()
        .unwrap();
    std::thread::sleep(std::time::Duration::from_millis(400));
    // SIGTERM → graceful drain (exit 130). If it already finished, the
    // resume below is a no-op rerun — also a valid path to test.
    unsafe {
        libc_kill(child.id() as i32, 15);
    }
    let _ = child.wait();

    // Second pass, chaos off: picks up whatever checkpoints survived and
    // must still converge on byte-identical output.
    let orch = run(&[
        "orchestrate", "3", "--scale", "test", "--seed", "42",
        "--dir", base.join("shards").to_str().unwrap(),
    ]);
    assert!(
        orch.status.success(),
        "resumed orchestrate failed:\n{}",
        String::from_utf8_lossy(&orch.stderr)
    );
    assert_eq!(orch.stdout, clean.stdout, "resumed output differs from unsharded run");
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
