//! End-to-end integration: all three studies, from world-build to figure,
//! on the Test-scale world, with cross-study consistency checks.

use beating_bgp::core::{calibration, study_anycast, study_egress, study_tiers};
use beating_bgp::core::{Scale, Scenario, ScenarioConfig};
use beating_bgp::measure::{BeaconConfig, ProbeConfig, SprayConfig};

#[test]
fn study_a_end_to_end() {
    let scenario = Scenario::build(ScenarioConfig::facebook(77, Scale::Test));
    let study = study_egress::run(
        &scenario,
        &SprayConfig {
            days: 1.0,
            window_stride: 8,
            ..Default::default()
        },
    )
    .unwrap();
    // Headline claim: BGP good for the vast majority, small improvable tail.
    assert!(study.fig1.frac_bgp_good > 0.7);
    assert!(study.fig1.frac_improvable_5ms < 0.25);
    // CDF is a distribution (monotone, ends at 1).
    let pts: Vec<(f64, f64)> = study.fig1.diff.points().collect();
    assert!(pts.windows(2).all(|w| w[0].1 <= w[1].1));
    assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
    // Fig 2 exists with both class comparisons on the full-diversity world.
    assert!(study.fig2.peer_vs_transit.is_some());
}

#[test]
fn study_b_end_to_end() {
    let scenario = Scenario::build(ScenarioConfig::microsoft(78, Scale::Test));
    let study = study_anycast::run(
        &scenario,
        &BeaconConfig {
            rounds: 6,
            ..Default::default()
        },
    )
    .unwrap();
    // Anycast good for most requests; CCDF decreasing.
    assert!(study.fig3.frac_within_10ms > 0.5);
    assert!(study.fig3.world.fraction_gt(0.0) >= study.fig3.world.fraction_gt(50.0));
    // Redirection helps more often than it hurts, but does both or neither.
    assert!(study.fig4.frac_improved >= study.fig4.frac_worse);
    assert!(study.fig4.frac_improved + study.fig4.frac_worse <= 1.0);
}

#[test]
fn study_c_end_to_end() {
    let scenario = Scenario::build(ScenarioConfig::google(79, Scale::Test));
    let study = study_tiers::run(
        &scenario,
        &ProbeConfig {
            rounds: 4,
            ..Default::default()
        },
    )
    .unwrap();
    assert!(study.fig5.qualifying_vps > 0);
    // The tier distinction must be visible in ingress distances.
    assert!(study.fig5.premium_ingress_within_400km > study.fig5.standard_ingress_within_400km);
    // Per-country rows reference real countries.
    for row in &study.fig5.rows {
        assert!(bb_geo_lookup(row.code), "unknown country {}", row.code);
    }
}

fn bb_geo_lookup(code: &str) -> bool {
    beating_bgp::geo::country::by_code(code).is_some()
}

#[test]
fn calibration_runs_on_all_three_worlds() {
    for cfg in [
        ScenarioConfig::facebook(80, Scale::Test),
        ScenarioConfig::microsoft(80, Scale::Test),
        ScenarioConfig::google(80, Scale::Test),
    ] {
        let scenario = Scenario::build(cfg);
        let c = calibration::run(&scenario);
        assert!(c.traffic_within_2500km > 0.3);
        assert!(c.median_nearest_km.is_finite());
        assert!(c.median_nearest_km <= c.median_fourth_km);
    }
}

#[test]
fn whole_pipeline_is_deterministic() {
    let run_once = || {
        let scenario = Scenario::build(ScenarioConfig::facebook(81, Scale::Test));
        let study = study_egress::run(
            &scenario,
            &SprayConfig {
                days: 0.5,
                window_stride: 8,
                ..Default::default()
            },
        )
        .unwrap();
        (
            study.fig1.frac_improvable_5ms,
            study.fig1.frac_bgp_good,
            study.fig1.diff.median(),
            study.episodes.degrade_together,
        )
    };
    assert_eq!(run_once(), run_once());
}

#[test]
fn different_seeds_give_different_worlds_same_shape() {
    let frac = |seed| {
        let scenario = Scenario::build(ScenarioConfig::facebook(seed, Scale::Test));
        let study = study_egress::run(
            &scenario,
            &SprayConfig {
                days: 0.5,
                window_stride: 8,
                ..Default::default()
            },
        )
        .unwrap();
        (study.fig1.frac_bgp_good, study.fig1.diff.median())
    };
    let (good_a, med_a) = frac(1);
    let (good_b, med_b) = frac(2);
    // Different worlds...
    assert_ne!(med_a, med_b);
    // ...same qualitative conclusion.
    assert!(good_a > 0.7 && good_b > 0.7);
}
