//! Property-based tests of the routing core on randomized topologies.

use beating_bgp::bgp::propagation::valley_free;
use beating_bgp::bgp::{
    compute_routes, compute_routes_reference, provider_rib, Announcement, RoutingTable, Scope,
};
use beating_bgp::topology::{generate, AsClass, Topology, TopologyConfig};
use proptest::prelude::*;

fn world(seed: u64) -> Topology {
    generate(&TopologyConfig::small(seed))
}

/// Assert the frontier-worklist table equals the legacy whole-table-sweep
/// oracle on every observable: route class, path length, via, NO_EXPORT
/// marking, entry links, and the materialized AS path.
fn assert_tables_equal(
    topo: &Topology,
    frontier: &RoutingTable,
    reference: &RoutingTable,
) -> Result<(), TestCaseError> {
    prop_assert_eq!(frontier.reachable_count(), reference.reachable_count());
    for node in topo.ases() {
        let f = frontier.route(node.id);
        let r = reference.route(node.id);
        match (f, r) {
            (None, None) => {}
            (Some(f), Some(r)) => {
                prop_assert_eq!(f.class, r.class, "class diverged at {:?}", node.id);
                prop_assert_eq!(f.path_len, r.path_len, "path_len diverged at {:?}", node.id);
                prop_assert_eq!(f.via, r.via, "via diverged at {:?}", node.id);
                prop_assert_eq!(
                    f.no_export, r.no_export,
                    "no_export diverged at {:?}",
                    node.id
                );
                prop_assert_eq!(
                    frontier.entry_links(node.id),
                    reference.entry_links(node.id),
                    "entry links diverged at {:?}",
                    node.id
                );
                prop_assert_eq!(
                    frontier.as_path(node.id),
                    reference.as_path(node.id),
                    "as_path diverged at {:?}",
                    node.id
                );
            }
            (f, r) => prop_assert!(false, "reachability diverged at {:?}: {f:?} vs {r:?}", node.id),
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Every best path computed for any origin on any topology is
    /// valley-free and terminates at the origin.
    #[test]
    fn paths_are_valley_free(seed in 0u64..5000, origin_pick in 0usize..40) {
        let topo = world(seed);
        let eyeballs: Vec<_> = topo.ases_of_class(AsClass::Eyeball).collect();
        let origin = eyeballs[origin_pick % eyeballs.len()].id;
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        for node in topo.ases() {
            if let Some(path) = table.as_path(node.id) {
                prop_assert!(valley_free(&topo, &path), "path {path:?}");
                prop_assert_eq!(*path.last().unwrap(), origin);
                prop_assert_eq!(path[0], node.id);
            }
        }
    }

    /// Full announcements reach every AS (the generator guarantees a
    /// connected provider hierarchy).
    #[test]
    fn full_announcement_reaches_all(seed in 0u64..5000) {
        let topo = world(seed);
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        prop_assert_eq!(table.reachable_count(), topo.as_count());
    }

    /// Withholding part of the announcement never improves any AS's route
    /// (class can only worsen, path length only grow).
    #[test]
    fn withholding_is_monotone(seed in 0u64..5000, keep_every in 2usize..4) {
        let topo = world(seed);
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let full = compute_routes(&topo, &Announcement::full(&topo, origin));

        let mut partial_ann = Announcement::full(&topo, origin);
        for (i, &(_, link)) in topo.adjacency(origin).iter().enumerate() {
            if i % keep_every != 0 {
                partial_ann.withhold_link(link);
            }
        }
        if partial_ann.is_empty() {
            return Ok(());
        }
        let partial = compute_routes(&topo, &partial_ann);
        for (asn, route) in partial.routes() {
            if asn == origin {
                continue;
            }
            let f = full.route(asn).expect("full reaches everyone");
            prop_assert!(
                route.class > f.class
                    || (route.class == f.class && route.path_len >= f.path_len),
                "withholding improved {asn}: {:?} vs {:?}",
                route,
                f
            );
        }
    }

    /// Prepending everywhere by a constant shifts every first-hop length
    /// but preserves reachability.
    #[test]
    fn uniform_prepend_preserves_reachability(seed in 0u64..5000, prepend in 1u32..5) {
        let topo = world(seed);
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::full(&topo, origin);
        let links: Vec<_> = ann.offers().map(|(l, _)| l).collect();
        for l in links {
            ann.prepend_link(l, prepend);
        }
        let table = compute_routes(&topo, &ann);
        prop_assert_eq!(table.reachable_count(), topo.as_count());
        // Direct neighbors carry the prepended length.
        for nb in topo.neighbors(origin) {
            let r = table.route(nb).unwrap();
            if r.via == Some(origin) {
                prop_assert_eq!(r.path_len, 1 + prepend);
            }
        }
    }

    /// Differential oracle: the frontier/delta worklist propagation must
    /// equal the legacy whole-table sweep on a plain full announcement.
    #[test]
    fn frontier_equals_reference_full(seed in 0u64..5000, origin_pick in 0usize..40) {
        let topo = world(seed);
        let eyeballs: Vec<_> = topo.ases_of_class(AsClass::Eyeball).collect();
        let origin = eyeballs[origin_pick % eyeballs.len()].id;
        let ann = Announcement::full(&topo, origin);
        let frontier = compute_routes(&topo, &ann);
        let reference = compute_routes_reference(&topo, &ann);
        assert_tables_equal(&topo, &frontier, &reference)?;
    }

    /// Differential oracle under traffic engineering: a randomized mix of
    /// withheld, prepended, and NO_EXPORT-scoped offers must still produce
    /// identical tables from both propagation strategies.
    #[test]
    fn frontier_equals_reference_engineered(
        seed in 0u64..5000,
        knobs in 0u64..u64::MAX,
        prepend in 1u32..5,
    ) {
        let topo = world(seed);
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let mut ann = Announcement::empty(origin);
        for (i, &(_, link)) in topo.adjacency(origin).iter().enumerate() {
            // Two knob bits per link: withhold / plain / prepend / NO_EXPORT.
            match (knobs >> ((2 * i) % 64)) & 0b11 {
                0b00 => {}
                0b01 => { ann.offer(link, 0); }
                0b10 => { ann.offer(link, prepend); }
                _ => { ann.offer_scoped(link, 0, Scope::NoExport); }
            }
        }
        if ann.is_empty() {
            // Everything withheld: both strategies must agree it's empty.
            let frontier = compute_routes(&topo, &Announcement::full(&topo, origin));
            let reference = compute_routes_reference(&topo, &Announcement::full(&topo, origin));
            assert_tables_equal(&topo, &frontier, &reference)?;
            return Ok(());
        }
        let frontier = compute_routes(&topo, &ann);
        let reference = compute_routes_reference(&topo, &ann);
        assert_tables_equal(&topo, &frontier, &reference)?;
    }

    /// The provider RIB is policy-sorted and only contains export-legal
    /// routes.
    #[test]
    fn rib_is_sorted_and_legal(seed in 0u64..5000) {
        let mut topo = world(seed);
        let provider = beating_bgp::cdn::build_provider(
            &mut topo,
            &beating_bgp::cdn::ProviderConfig::facebook_like(seed),
        );
        let origin = topo.ases_of_class(AsClass::Eyeball).next().unwrap().id;
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        for rib in provider_rib(&topo, provider.asn, &table) {
            for w in rib.routes.windows(2) {
                prop_assert!(
                    (w[0].class, w[0].total_len) <= (w[1].class, w[1].total_len)
                );
            }
            for route in &rib.routes {
                // The neighbor must genuinely reach the origin.
                prop_assert!(
                    route.neighbor == origin || table.route(route.neighbor).is_some()
                );
                prop_assert!(route.total_len >= 1);
            }
        }
    }
}
