//! Property-based tests on the mergeable quantile sketch (`bbqs/v1`).
//!
//! The serve daemon's byte-identity contract rests on three algebraic
//! facts about the sketch, each checked here against arbitrary weighted
//! streams:
//!
//! * merge is **associative and commutative at the byte level** — the
//!   encoded bytes of `(a ∪ b) ∪ c` equal those of `a ∪ (b ∪ c)` and of
//!   any other merge order, which is what makes shard/epoch order
//!   invisible in the output;
//! * a stream split into chunks and merged equals the whole-stream sketch
//!   byte-for-byte (the streaming daemon IS this property);
//! * every quantile estimate stays within the declared relative-error
//!   bound of the exact `weighted_quantile` truth, before and after
//!   coarsening, and the encode/decode round trip is the identity.

use beating_bgp::stats::{weighted_quantile, QuantileSketch};
use proptest::prelude::*;

/// Weighted samples shaped like the serve stream's preferred-vs-alternate
/// diffs: signed, spanning several orders of magnitude, unit-ish weights.
fn samples(max_len: usize) -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-1e4f64..1e4, 0.5f64..4.0), 1..max_len)
}

fn sketch_of(eps: f64, data: &[(f64, f64)]) -> QuantileSketch {
    let mut sk = QuantileSketch::new(eps);
    for &(v, w) in data {
        sk.add(v, w);
    }
    sk
}

proptest! {
    /// Merge order never shows in the encoded bytes: left-fold,
    /// right-fold, and reversed-order folds all agree.
    #[test]
    fn merge_is_associative_and_commutative_at_byte_level(
        a in samples(60),
        b in samples(60),
        c in samples(60),
        eps in 0.005f64..0.2,
    ) {
        let (sa, sb, sc) = (sketch_of(eps, &a), sketch_of(eps, &b), sketch_of(eps, &c));

        // (a ∪ b) ∪ c
        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);
        // a ∪ (b ∪ c)
        let mut right = sb.clone();
        right.merge(&sc);
        let mut assoc = sa.clone();
        assoc.merge(&right);
        // c ∪ b ∪ a
        let mut rev = sc.clone();
        rev.merge(&sb);
        rev.merge(&sa);

        prop_assert_eq!(left.encode(), assoc.encode(), "merge is not associative");
        prop_assert_eq!(left.encode(), rev.encode(), "merge is not commutative");
    }

    /// Chunked ingestion is invisible: splitting the stream at an
    /// arbitrary set of epoch boundaries and merging the per-epoch
    /// sketches reproduces the whole-stream sketch byte-for-byte.
    #[test]
    fn chunked_merge_equals_whole_stream(
        data in samples(200),
        chunk in 1usize..40,
        eps in 0.005f64..0.2,
    ) {
        let whole = sketch_of(eps, &data);
        let mut merged = QuantileSketch::new(eps);
        for epoch in data.chunks(chunk) {
            merged.merge(&sketch_of(eps, epoch));
        }
        prop_assert_eq!(whole.encode(), merged.encode());
    }

    /// The accuracy contract: |estimate − truth| ≤ ε·|truth| at every
    /// probed quantile, where ε is the sketch's *current* (possibly
    /// coarsened) resolution; and decode(encode(s)) is the identity.
    #[test]
    fn quantile_error_is_bounded_and_roundtrip_is_identity(
        data in samples(200),
        eps in 0.005f64..0.2,
        coarsen_rounds in 0u32..3,
    ) {
        let mut sk = sketch_of(eps, &data);
        for _ in 0..coarsen_rounds {
            sk.coarsen();
        }
        for q in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
            let truth = weighted_quantile(&data, q).unwrap();
            let est = sk.quantile(q).unwrap();
            prop_assert!(
                (est - truth).abs() <= sk.eps() * truth.abs() + 1e-9,
                "q={} est={} truth={} eps={}", q, est, truth, sk.eps()
            );
        }
        let bytes = sk.encode();
        let back = QuantileSketch::decode(&bytes).expect("decode own encoding");
        prop_assert_eq!(bytes, back.encode());
    }
}
