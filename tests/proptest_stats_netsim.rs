//! Property-based tests on the statistics and performance-model substrates.

use beating_bgp::geo::GeoPoint;
use beating_bgp::netsim::{CongestionConfig, CongestionKey, CongestionModel, SimTime};
use beating_bgp::stats::{weighted_quantile, Cdf};
use proptest::prelude::*;

proptest! {
    /// Weighted quantiles are monotone in q and bounded by the data range.
    #[test]
    fn weighted_quantile_monotone(
        values in prop::collection::vec((-1e4f64..1e4, 1e-6f64..10.0), 1..200),
        qs in prop::collection::vec(0.0f64..1.0, 2..10),
    ) {
        let mut qs = qs;
        qs.sort_by(|a, b| a.total_cmp(b));
        let mut prev = f64::NEG_INFINITY;
        for &q in &qs {
            let v = weighted_quantile(&values, q).unwrap();
            prop_assert!(v >= prev);
            prev = v;
        }
        let lo = values.iter().map(|&(v, _)| v).fold(f64::INFINITY, f64::min);
        let hi = values.iter().map(|&(v, _)| v).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(prev >= lo && prev <= hi);
    }

    /// A CDF built from any weighted samples is a distribution function:
    /// non-decreasing, 0-to-1, and value_at inverts fraction_leq.
    #[test]
    fn cdf_is_a_distribution(
        values in prop::collection::vec((-1e4f64..1e4, 1e-6f64..10.0), 1..200),
        probe in -1e4f64..1e4,
    ) {
        let cdf = Cdf::from_weighted(&values).unwrap();
        let pts: Vec<(f64, f64)> = cdf.points().collect();
        prop_assert!(pts.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 <= w[1].1));
        prop_assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-9);
        let f = cdf.fraction_leq(probe);
        prop_assert!((0.0..=1.0).contains(&f));
        for p in [0.1, 0.5, 0.9] {
            let v = cdf.value_at(p);
            prop_assert!(cdf.fraction_leq(v) >= p - 1e-9);
        }
    }

    /// Haversine distance is a metric on the sphere: symmetric, zero on the
    /// diagonal, triangle inequality.
    #[test]
    fn haversine_is_a_metric(
        a in (-85.0f64..85.0, -180.0f64..180.0),
        b in (-85.0f64..85.0, -180.0f64..180.0),
        c in (-85.0f64..85.0, -180.0f64..180.0),
    ) {
        let (pa, pb, pc) = (
            GeoPoint::new(a.0, a.1),
            GeoPoint::new(b.0, b.1),
            GeoPoint::new(c.0, c.1),
        );
        let ab = pa.distance_km(&pb);
        let ba = pb.distance_km(&pa);
        prop_assert!((ab - ba).abs() < 1e-9);
        prop_assert!(pa.distance_km(&pa) < 1e-9);
        let (bc, ac) = (pb.distance_km(&pc), pa.distance_km(&pc));
        prop_assert!(ac <= ab + bc + 1e-6, "triangle: {ac} > {ab} + {bc}");
    }

    /// Congestion utilization is always within bounds and deterministic.
    #[test]
    fn congestion_bounded_and_deterministic(
        seed in 0u64..1000,
        key in 0u64..10_000,
        hour in 0.0f64..240.0,
        offset in -12.0f64..14.0,
    ) {
        let m1 = CongestionModel::new(seed, CongestionConfig::default());
        let m2 = CongestionModel::new(seed, CongestionConfig::default());
        let k = CongestionKey::LastMile(key);
        let t = SimTime::from_hours(hour);
        let u1 = m1.utilization(k, offset, t);
        let u2 = m2.utilization(k, offset, t);
        prop_assert_eq!(u1, u2);
        prop_assert!((0.0..=0.97).contains(&u1));
        // Queueing delay is finite and non-negative.
        let d = m1.queueing_delay_ms(k, offset, t);
        prop_assert!(d.is_finite() && d >= 0.0);
    }

    /// A compiled `PathPlan` answers bit-identically to the reference
    /// `path_rtt_ms` walk, for any topology, realized path, congestion
    /// seed, last-mile key, and query time. This is the contract that lets
    /// the measurement hot loops use plans instead of the full walk.
    #[test]
    fn path_plan_matches_reference_walk(
        topo_seed in 0u64..20,
        model_seed in 0u64..50,
        hours in prop::collection::vec(0.0f64..240.0, 1..6),
        lastmile in 0u64..20_000,
    ) {
        use beating_bgp::bgp::{compute_routes, Announcement};
        use beating_bgp::netsim::{path_rtt_ms, realize_path, CongestionPlan, RealizeSpec};
        use beating_bgp::topology::{generate, AsClass, TopologyConfig};

        let topo = generate(&TopologyConfig::small(topo_seed));
        let eye = topo.ases_of_class(AsClass::Eyeball).next().unwrap();
        let origin = eye.id;
        let dst_city = eye.footprint[0];
        let table = compute_routes(&topo, &Announcement::full(&topo, origin));
        let model = CongestionModel::new(model_seed, CongestionConfig::default());
        let cplan = CongestionPlan::new(&model);
        // Upper half of the range means "no last-mile key", so both arms
        // of the Option are exercised (vendored proptest has no option_of).
        let lm = (lastmile < 10_000).then_some(CongestionKey::LastMile(lastmile));

        let mut checked = 0usize;
        for src in topo.ases() {
            if src.id == origin || src.footprint.is_empty() {
                continue;
            }
            let Some(as_path) = table.as_path(src.id) else { continue };
            let spec = RealizeSpec {
                as_path: &as_path,
                src_city: src.footprint[0],
                dst_city: Some(dst_city),
                first_link: None,
                final_entry_links: None,
            };
            let path = realize_path(&topo, &spec);
            let plan = cplan.compile_path(&topo, &path, lm);
            for &h in &hours {
                let t = SimTime::from_hours(h);
                let want = path_rtt_ms(&topo, &model, &path, lm, t);
                let got = plan.rtt_ms(t);
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "plan {} != walk {} at h={} (topo {}, model {})",
                    got, want, h, topo_seed, model_seed
                );
            }
            checked += 1;
            if checked >= 8 {
                break; // enough distinct paths per case; keep runtime sane
            }
        }
        prop_assert!(checked > 0, "no realizable path in topology {}", topo_seed);
    }

    /// Quantile edge cases: q=0 is the minimum, q=1 is the maximum, equal
    /// weights reduce the weighted quantile to the unweighted one, and
    /// duplicate-heavy inputs stay within the data range. `quantile_select`
    /// agrees with the sorting implementation at the extremes.
    #[test]
    fn quantile_edge_cases(
        values in prop::collection::vec(-1e4f64..1e4, 1..100),
        dup in -1e4f64..1e4,
        ndup in 0usize..50,
        q in 0.0f64..1.0,
    ) {
        use beating_bgp::stats::{quantile_select, quantile_unsorted, weighted_quantile};

        // Duplicate-heavy input: append the same value many times.
        let mut values = values;
        values.extend(std::iter::repeat(dup).take(ndup));
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);

        let weighted: Vec<(f64, f64)> = values.iter().map(|&v| (v, 1.0)).collect();
        prop_assert_eq!(weighted_quantile(&weighted, 0.0).unwrap(), lo);
        prop_assert_eq!(weighted_quantile(&weighted, 1.0).unwrap(), hi);
        prop_assert_eq!(quantile_unsorted(&values, 0.0).unwrap(), lo);
        prop_assert_eq!(quantile_unsorted(&values, 1.0).unwrap(), hi);
        prop_assert_eq!(quantile_select(&mut values.clone(), 0.0), lo);
        prop_assert_eq!(quantile_select(&mut values.clone(), 1.0), hi);

        // With equal weights the step-function weighted quantile returns an
        // actual data point whose rank brackets the interpolating unweighted
        // quantile to within two order statistics.
        let vw = weighted_quantile(&weighted, q).unwrap();
        prop_assert!(values.contains(&vw), "weighted quantile {vw} not a data point");
        let n = values.len() as f64;
        let lo_b = quantile_unsorted(&values, (q - 2.0 / n).max(0.0)).unwrap();
        let hi_b = quantile_unsorted(&values, (q + 2.0 / n).min(1.0)).unwrap();
        prop_assert!(
            (lo_b..=hi_b).contains(&vw),
            "weighted {vw} outside unweighted bracket [{lo_b}, {hi_b}] at q={q}"
        );
        prop_assert!((lo..=hi).contains(&vw));
        let vs = quantile_select(&mut values.clone(), q);
        prop_assert!((lo..=hi).contains(&vs));
    }

    /// `min_finite` (the NaN policy behind `best_unicast_ms` and the
    /// egress study's best-alternate pick) ignores non-finite entries,
    /// returns NaN — never ±inf — when nothing finite remains, and equals
    /// the plain minimum of the finite subset otherwise.
    #[test]
    fn min_finite_nan_policy(
        finite in prop::collection::vec(-1e4f64..1e4, 0..50),
        nans in 0usize..8,
        infs in 0usize..4,
    ) {
        use beating_bgp::stats::min_finite;

        let mut mixed: Vec<f64> = finite.clone();
        mixed.extend(std::iter::repeat(f64::NAN).take(nans));
        mixed.extend(std::iter::repeat(f64::INFINITY).take(infs));
        // Deterministic interleave so the non-finite entries are not all
        // at the tail.
        let shift = nans.min(mixed.len());
        mixed.rotate_right(shift);

        let got = min_finite(mixed.iter().copied());
        if finite.is_empty() {
            prop_assert!(got.is_nan(), "all-NaN input produced {got}");
        } else {
            let want = finite.iter().copied().fold(f64::INFINITY, f64::min);
            prop_assert_eq!(got, want);
        }
        // Never ±inf, no matter the mix.
        prop_assert!(!got.is_infinite(), "min_finite returned {got}");
    }

    /// CDF tail queries never leave [0, 1] even for weight distributions
    /// prone to floating-point drift in the cumulative sum — so
    /// `fraction_gt ≥ 0` and `fraction_leq ≤ 1` hold at every probe.
    #[test]
    fn cdf_fractions_bounded_under_drift(
        values in prop::collection::vec((-1e4f64..1e4, 1e-12f64..1e12), 1..300),
        probes in prop::collection::vec(-2e4f64..2e4, 1..10),
    ) {
        use beating_bgp::stats::Ccdf;

        let cdf = Cdf::from_weighted(&values).unwrap();
        let ccdf = Ccdf::from_weighted(&values).unwrap();
        for &x in &probes {
            let leq = cdf.fraction_leq(x);
            prop_assert!((0.0..=1.0).contains(&leq), "fraction_leq({x}) = {leq}");
            let gt = ccdf.fraction_gt(x);
            prop_assert!((0.0..=1.0).contains(&gt), "fraction_gt({x}) = {gt}");
        }
        // Max of the support is ≤ everything kept: the last cumulative
        // fraction is exactly 1, so nothing is "above" the distribution.
        prop_assert!(ccdf.fraction_gt(cdf.max()) <= 0.0 + 1e-12);
        prop_assert!(cdf.fraction_leq(cdf.max()) >= 1.0 - 1e-12);
    }

    /// Goodput is monotone: worse RTT or worse utilization never increases
    /// throughput.
    #[test]
    fn goodput_monotone(
        rtt in 1.0f64..500.0,
        drtt in 0.0f64..100.0,
        util in 0.0f64..0.97,
        dutil in 0.0f64..0.4,
    ) {
        use beating_bgp::netsim::goodput_mbps;
        let base = goodput_mbps(rtt, util, 1e9);
        prop_assert!(goodput_mbps(rtt + drtt, util, 1e9) <= base + 1e-9);
        prop_assert!(goodput_mbps(rtt, (util + dutil).min(0.999), 1e9) <= base + 1e-9);
    }
}
