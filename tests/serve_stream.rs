//! Integration tests for `repro serve`, the crash-tolerant streaming
//! campaign daemon (ISSUE 9 acceptance criteria):
//!
//! - a serve killed mid-campaign (`--chaos` exits 101 right after an epoch
//!   snapshot lands — the deterministic stand-in for `kill -9`) and then
//!   restarted with the same command produces stdout and live CSV
//!   byte-identical to an uninterrupted serve, for `--jobs 1` and
//!   `--jobs 4` alike, including under a heavy fault storm;
//! - exact mode (`--epsilon 0`) reproduces the batch `fig1` pipeline
//!   byte-for-byte, stdout and CSV both;
//! - sketch mode memory stays flat while the window count grows 10x;
//! - a snapshot keyed on a different seed/epsilon/epoch is rejected with
//!   exit 2, never silently reused.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb_serve_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    cmd.output().expect("spawn repro")
}

fn read_file(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn chaos_crash_and_restart_is_byte_identical_across_job_counts() {
    for jobs in ["1", "4"] {
        let base = tmpdir(&format!("chaos_j{jobs}"));
        let clean_csv = base.join("clean-csv");
        let crash_csv = base.join("crash-csv");

        // Uninterrupted reference serve at the same (seed, scale, windows).
        let clean = run(&[
            "serve", "--scale", "test", "--seed", "42", "--jobs", jobs,
            "--windows", "40", "--epoch", "8",
            "--dir", base.join("clean").to_str().unwrap(),
            "--csv", clean_csv.to_str().unwrap(),
        ]);
        assert!(clean.status.success(), "clean serve failed: {clean:?}");
        assert!(!clean.stdout.is_empty());

        // Chaos run: crashes (exit 101) right after a seed-keyed epoch's
        // snapshot is flushed, leaving the snapshot whole and no .tmp.
        let crash_dir = base.join("crash");
        let crashed = run(&[
            "serve", "--scale", "test", "--seed", "42", "--jobs", jobs,
            "--windows", "40", "--epoch", "8", "--chaos",
            "--dir", crash_dir.to_str().unwrap(),
            "--csv", crash_csv.to_str().unwrap(),
        ]);
        assert_eq!(
            crashed.status.code(),
            Some(101),
            "chaos serve must exit 101: {crashed:?}"
        );
        assert!(crash_dir.join("snapshot.bbsn").exists(), "snapshot not flushed");
        assert!(
            !crash_dir.join("snapshot.bbsn.tmp").exists(),
            "tmp file must not survive the atomic rename"
        );

        // Restart with the same command: resumed runs never self-crash.
        let resumed = run(&[
            "serve", "--scale", "test", "--seed", "42", "--jobs", jobs,
            "--windows", "40", "--epoch", "8", "--chaos",
            "--dir", crash_dir.to_str().unwrap(),
            "--csv", crash_csv.to_str().unwrap(),
        ]);
        assert!(resumed.status.success(), "resumed serve failed: {resumed:?}");
        let stderr = String::from_utf8_lossy(&resumed.stderr);
        assert!(
            stderr.contains("serve: resuming at window"),
            "resume must report its starting window:\n{stderr}"
        );
        assert_eq!(
            clean.stdout, resumed.stdout,
            "resumed serve stdout differs from uninterrupted serve (jobs {jobs})"
        );
        assert_eq!(
            read_file(&clean_csv.join("fig1.csv")),
            read_file(&crash_csv.join("fig1.csv")),
            "resumed serve CSV differs from uninterrupted serve (jobs {jobs})"
        );

        std::fs::remove_dir_all(&base).ok();
    }
}

#[test]
fn chaos_crash_and_restart_survives_a_heavy_fault_storm() {
    let base = tmpdir("storm");
    let clean = run(&[
        "serve", "--scale", "test", "--seed", "43", "--jobs", "4",
        "--faults", "heavy", "--windows", "40", "--epoch", "8",
        "--dir", base.join("clean").to_str().unwrap(),
    ]);
    assert!(clean.status.success(), "{clean:?}");

    let dir = base.join("crash");
    let crashed = run(&[
        "serve", "--scale", "test", "--seed", "43", "--jobs", "4",
        "--faults", "heavy", "--windows", "40", "--epoch", "8", "--chaos",
        "--dir", dir.to_str().unwrap(),
    ]);
    assert_eq!(crashed.status.code(), Some(101), "{crashed:?}");

    let resumed = run(&[
        "serve", "--scale", "test", "--seed", "43", "--jobs", "4",
        "--faults", "heavy", "--windows", "40", "--epoch", "8", "--chaos",
        "--dir", dir.to_str().unwrap(),
    ]);
    assert!(resumed.status.success(), "{resumed:?}");
    assert_eq!(
        clean.stdout, resumed.stdout,
        "heavy-fault serve must resume byte-identical"
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn exact_serve_matches_the_batch_fig1_pipeline_byte_for_byte() {
    let base = tmpdir("exact");
    let batch_csv = base.join("batch-csv");
    let serve_csv = base.join("serve-csv");

    let batch = run(&[
        "fig1", "--scale", "test", "--seed", "7",
        "--csv", batch_csv.to_str().unwrap(),
    ]);
    assert!(batch.status.success(), "{batch:?}");

    // Default --epsilon is 0 (exact) and the default window target is the
    // batch horizon, so serve must reduce to exactly the batch study.
    let serve = run(&[
        "serve", "--scale", "test", "--seed", "7", "--epoch", "5",
        "--dir", base.join("sd").to_str().unwrap(),
        "--csv", serve_csv.to_str().unwrap(),
    ]);
    assert!(serve.status.success(), "{serve:?}");
    assert_eq!(batch.stdout, serve.stdout, "serve stdout differs from batch fig1");
    assert_eq!(
        read_file(&batch_csv.join("fig1.csv")),
        read_file(&serve_csv.join("fig1.csv")),
        "serve fig1.csv differs from batch fig1.csv"
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sketch_memory_stays_flat_while_windows_grow_tenfold() {
    let base = tmpdir("flat");
    let peak = |tag: &str, windows: &str| -> (u64, u64) {
        let json = base.join(format!("{tag}.json"));
        let out = run(&[
            "serve", "--scale", "test", "--seed", "42", "--epsilon", "0.05",
            "--windows", windows, "--epoch", "8",
            "--dir", base.join(tag).to_str().unwrap(),
            "--timing-json", json.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "{out:?}");
        let text = String::from_utf8(read_file(&json)).unwrap();
        let grab = |key: &str| -> u64 {
            let at = text.find(key).unwrap_or_else(|| panic!("{key} missing:\n{text}"));
            text[at + key.len()..]
                .trim_start_matches([':', ' '])
                .chars()
                .take_while(|c| c.is_ascii_digit())
                .collect::<String>()
                .parse()
                .unwrap()
        };
        (grab("\"windows_done\""), grab("\"peak_resident_bytes\""))
    };

    let (small_windows, small_peak) = peak("w40", "40");
    let (big_windows, big_peak) = peak("w400", "400");
    assert_eq!(small_windows, 40);
    assert_eq!(big_windows, 400);
    assert!(small_peak > 0);
    // Bounded-memory contract: 10x the stream, at most 2x the footprint
    // (the sketch bucket set saturates; it does not grow with the stream).
    assert!(
        big_peak <= 2 * small_peak,
        "sketch memory grew with the stream: {small_peak} bytes at 40 windows, \
         {big_peak} bytes at 400"
    );

    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn stale_snapshot_is_rejected_not_reused() {
    let base = tmpdir("stale");
    let dir = base.join("sd");
    let seeded = run(&[
        "serve", "--scale", "test", "--seed", "42",
        "--windows", "16", "--epoch", "8",
        "--dir", dir.to_str().unwrap(),
    ]);
    assert!(seeded.status.success(), "{seeded:?}");

    // Each mismatching key field is named; exit 2; stdout stays silent.
    for (args, field) in [
        (vec!["--seed", "7", "--windows", "16", "--epoch", "8"], "seed"),
        (vec!["--seed", "42", "--windows", "16", "--epoch", "4"], "epoch_windows"),
        (
            vec!["--seed", "42", "--windows", "16", "--epoch", "8", "--epsilon", "0.05"],
            "eps",
        ),
    ] {
        let mut argv = vec!["serve", "--scale", "test", "--dir", dir.to_str().unwrap()];
        argv.extend(args);
        let out = run(&argv);
        assert_eq!(out.status.code(), Some(2), "{field}: {out:?}");
        assert!(out.stdout.is_empty(), "{field}: stdout must stay silent");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(
            err.contains(&format!("{field} mismatch")),
            "{field} not named:\n{err}"
        );
    }

    // A torn snapshot (mid-file corruption) is rejected too — serve
    // snapshots have no salvage path; the contract is rerun-to-resume
    // from the previous whole epoch, never a guess.
    let snap = dir.join("snapshot.bbsn");
    let mut bytes = read_file(&snap);
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    std::fs::write(&snap, &bytes).unwrap();
    let torn = run(&[
        "serve", "--scale", "test", "--seed", "42",
        "--windows", "16", "--epoch", "8",
        "--dir", dir.to_str().unwrap(),
    ]);
    assert_eq!(torn.status.code(), Some(2), "{torn:?}");

    std::fs::remove_dir_all(&base).ok();
}
