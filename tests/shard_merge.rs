//! Cross-process sharding integration tests.
//!
//! The contract under test (ISSUE 7 acceptance criteria): a campaign split
//! into shards with `--shard I/N --checkpoint DIR` and stitched back with
//! `repro merge DIR...` produces stdout and CSV exports **byte-identical**
//! to the unsharded run at the same seed/scale — for `--jobs 1` and
//! `--jobs 4` alike — shards print nothing on stdout, and mismatched or
//! incomplete shard sets are rejected with exit 2, never silently merged.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bb_shard_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    let mut cmd = repro();
    cmd.args(args);
    cmd.output().expect("spawn repro")
}

fn read_csvs(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|x| x == "csv"))
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read(&p).unwrap(),
            )
        })
        .collect();
    files.sort();
    files
}

#[test]
fn three_shards_merge_byte_identical_across_job_counts() {
    for jobs in ["1", "4"] {
        let base = tmpdir(&format!("merge_j{jobs}"));
        let full_csv = base.join("full-csv");
        let merged_csv = base.join("merged-csv");

        let full = run(&[
            "all", "--scale", "test", "--seed", "42", "--jobs", jobs,
            "--csv", full_csv.to_str().unwrap(),
        ]);
        assert!(full.status.success(), "unsharded run failed (jobs {jobs})");

        let mut shard_dirs: Vec<PathBuf> = Vec::new();
        for i in 0..3 {
            let dir = base.join(format!("shard{i}"));
            let shard_csv = base.join(format!("shard{i}-csv"));
            let out = run(&[
                "all", "--scale", "test", "--seed", "42", "--jobs", jobs,
                "--shard", &format!("{i}/3"),
                "--checkpoint", dir.to_str().unwrap(),
                "--csv", shard_csv.to_str().unwrap(),
            ]);
            assert!(out.status.success(), "shard {i}/3 failed (jobs {jobs})");
            assert!(
                out.stdout.is_empty(),
                "shard {i}/3 printed {} bytes on stdout; shards must stay silent",
                out.stdout.len()
            );
            shard_dirs.push(dir);
        }

        let mut args: Vec<&str> = vec!["merge"];
        let dir_strs: Vec<String> = shard_dirs
            .iter()
            .map(|d| d.to_str().unwrap().to_string())
            .collect();
        args.extend(dir_strs.iter().map(String::as_str));
        args.extend(["--csv", merged_csv.to_str().unwrap()]);
        let merged = run(&args);
        assert!(merged.status.success(), "merge failed (jobs {jobs})");

        assert_eq!(
            merged.stdout, full.stdout,
            "merged stdout differs from unsharded run (jobs {jobs})"
        );
        assert_eq!(
            read_csvs(&merged_csv),
            read_csvs(&full_csv),
            "merged CSV exports differ from unsharded run (jobs {jobs})"
        );

        let _ = std::fs::remove_dir_all(&base);
    }
}

#[test]
fn merge_rejects_mismatched_and_incomplete_shards() {
    let base = tmpdir("reject");

    // Two of three shards of a seed-42 campaign, one shard of a seed-43 one.
    let mut dirs: Vec<PathBuf> = Vec::new();
    for (i, seed) in [(0usize, "42"), (1, "42"), (2, "43")] {
        let dir = base.join(format!("s{i}_{seed}"));
        let out = run(&[
            "all", "--scale", "test", "--seed", seed, "--jobs", "1",
            "--shard", &format!("{i}/3"),
            "--checkpoint", dir.to_str().unwrap(),
        ]);
        assert!(out.status.success(), "shard {i}/3 seed {seed} failed");
        dirs.push(dir);
    }

    // A foreign shard in the set: keys mismatch, exit 2.
    let out = run(&[
        "merge",
        dirs[0].to_str().unwrap(),
        dirs[1].to_str().unwrap(),
        dirs[2].to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "mismatched shard set must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("seed mismatch"), "stderr: {err}");
    assert!(out.stdout.is_empty(), "a rejected merge must print nothing");

    // A coverage gap (only 2 of 3 same-campaign shards): exit 2, names the
    // missing experiments.
    let out = run(&["merge", dirs[0].to_str().unwrap(), dirs[1].to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "incomplete shard set must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("missing"), "stderr: {err}");
    assert!(out.stdout.is_empty(), "a rejected merge must print nothing");

    // A missing manifest directory: exit 2.
    let out = run(&["merge", base.join("nonexistent").to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2), "unreadable manifest must exit 2");

    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn shard_without_checkpoint_is_a_usage_error() {
    let out = run(&["all", "--scale", "test", "--shard", "0/3"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--shard requires --checkpoint"), "stderr: {err}");

    for bad in ["3/3", "4/3", "x/3", "1", "1/0", "/", ""] {
        let out = run(&["all", "--scale", "test", "--shard", bad, "--checkpoint", "/tmp/x"]);
        assert_eq!(out.status.code(), Some(2), "spec {bad:?} must exit 2");
    }
}
