//! `repro --timing-json PATH` emits a well-formed perf report.
//!
//! This is a schema smoke test, not a perf assertion: it runs a small
//! experiment end to end and checks that the report carries every key the
//! CI bench step and downstream tooling rely on. Timing *values* are
//! machine-dependent and deliberately not checked.

use std::process::Command;

#[test]
fn timing_json_emits_schema_v1() {
    let out_path = std::env::temp_dir().join(format!("bb_perf_{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["fig1", "--scale", "test", "--seed", "42", "--jobs", "1", "--timing-json"])
        .arg(&out_path)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro exited with {status}");

    let j = std::fs::read_to_string(&out_path).expect("report written");
    std::fs::remove_file(&out_path).ok();

    for key in [
        "\"schema\": \"bb-perf-report/v1\"",
        "\"experiment\": \"fig1\"",
        "\"scale\": \"test\"",
        "\"seed\": 42",
        "\"jobs\": 1",
        "\"wall_s\":",
        "\"total_samples\":",
        "\"samples_per_sec\":",
        "\"plan_compile_s\":",
        "\"plan_query_s\":",
        "\"phases\": [",
        "\"label\": \"spray:windows\"",
        "\"counters\": [",
        "\"label\": \"samples:spray\"",
        "\"route_cache\": {",
        "\"hit_rate\":",
        "\"faults\": {",
        "\"samples_lost\":",
        "\"timeouts\":",
        "\"retries\":",
        "\"windows_dropped\":",
        "\"panics_isolated\":",
        "\"congestion_races_closed\":",
    ] {
        assert!(j.contains(key), "missing {key} in report:\n{j}");
    }

    // A fault-free run reports zero fault activity.
    assert!(
        j.contains("\"faults\": {\"samples_lost\": 0, \"timeouts\": 0, \"retries\": 0, \"windows_dropped\": 0, \"panics_isolated\": 0}"),
        "fault-free run should report zero fault activity:\n{j}"
    );

    // The orchestration section is emitted only by `repro orchestrate`
    // (zero-cost-when-unused, like the checkpoint phases above), and a
    // plain run writes no heartbeat records either.
    assert!(
        !j.contains("\"orchestration\""),
        "plain run must not carry an orchestration section:\n{j}"
    );
    assert!(!j.contains("checkpoint:heartbeat"), "{j}");

    // Balanced brackets and no trailing commas: cheap structural validity
    // checks for the hand-rolled writer.
    assert_eq!(j.matches('{').count(), j.matches('}').count());
    assert_eq!(j.matches('[').count(), j.matches(']').count());
    assert!(!j.contains(",\n}"));
    assert!(!j.contains(",\n  ]"));
}

#[test]
fn timing_json_counts_fault_activity_under_light_faults() {
    let out_path =
        std::env::temp_dir().join(format!("bb_perf_faults_{}.json", std::process::id()));
    let status = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "fig1",
            "--scale",
            "test",
            "--seed",
            "42",
            "--jobs",
            "1",
            "--faults",
            "light",
            "--timing-json",
        ])
        .arg(&out_path)
        .status()
        .expect("spawn repro");
    assert!(status.success(), "repro exited with {status}");

    let j = std::fs::read_to_string(&out_path).expect("report written");
    std::fs::remove_file(&out_path).ok();

    // Light faults on a full spray campaign must lose *some* samples; the
    // exact counts are covered by the determinism test in
    // fault_injection.rs.
    assert!(
        !j.contains("\"samples_lost\": 0,"),
        "light faults lost no samples:\n{j}"
    );
}
