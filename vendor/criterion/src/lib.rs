//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmark harness exposing the subset of the
//! criterion API this workspace's benches use: `Criterion`,
//! `benchmark_group` / `sample_size` / `bench_function` / `finish`,
//! `Bencher::iter`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Each `bench_function` runs a short warmup, then `sample_size`
//! measured samples, and prints min/median/mean per iteration. There are
//! no statistical refinements, plots, or saved baselines — the point is
//! that `cargo bench` compiles and produces usable relative numbers
//! without network access.

use std::time::{Duration, Instant};

/// Top-level harness handle passed to each benchmark function.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
        };
        // Warmup: one untimed pass so lazy setup and caches settle.
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        report(&self.name, &id, &bencher.samples);
        self
    }

    pub fn finish(self) {}
}

/// Timing callback target: `b.iter(|| work())`.
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        let start = Instant::now();
        let out = routine();
        let elapsed = start.elapsed();
        std::hint::black_box(out);
        self.samples.push(elapsed);
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples recorded");
        return;
    }
    let mut sorted: Vec<Duration> = samples.to_vec();
    sorted.sort();
    let min = sorted[0];
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!(
        "{group}/{id}: min {} | median {} | mean {} ({} samples)",
        fmt_duration(min),
        fmt_duration(median),
        fmt_duration(mean),
        sorted.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Re-export so user code depending on `criterion::black_box` still works.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $(
                $target(&mut criterion);
            )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; accept and
            // ignore them so invocation matches the real criterion binary.
            let _args: Vec<String> = std::env::args().collect();
            $(
                $group();
            )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("demo");
        g.sample_size(3);
        let mut runs = 0;
        g.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        g.finish();
        // 1 warmup + 3 samples
        assert_eq!(runs, 4);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_nanos(10)), "10 ns");
        assert!(fmt_duration(Duration::from_micros(5)).ends_with("µs"));
        assert!(fmt_duration(Duration::from_millis(5)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with("s"));
    }
}
