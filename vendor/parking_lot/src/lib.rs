//! Offline stand-in for `parking_lot`.
//!
//! Thin wrappers over `std::sync` that expose parking_lot's panic-free
//! guard-returning API (`read()`/`write()`/`lock()` without `unwrap`).
//! Poisoning is translated into a panic, matching parking_lot's behavior
//! of not poisoning at all for the purposes of this workspace.

use std::sync::{self, TryLockError};

pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

/// Reader-writer lock with parking_lot's unwrapped guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// Mutex with parking_lot's unwrapped guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(5);
        assert_eq!(*l.read(), 5);
        *l.write() += 1;
        assert_eq!(*l.read(), 6);
        assert_eq!(l.into_inner(), 6);
    }

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new("x".to_string());
        m.lock().push('y');
        assert_eq!(*m.lock(), "xy");
    }

    #[test]
    fn try_variants() {
        let l = RwLock::new(1);
        let g = l.read();
        assert!(l.try_read().is_some());
        assert!(l.try_write().is_none());
        drop(g);
        assert!(l.try_write().is_some());
    }
}
