//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest API this workspace's tests use:
//! the `proptest!` macro with an optional `#![proptest_config(...)]`
//! header, range and tuple strategies, `prop::collection::vec`, and the
//! `prop_assert!`/`prop_assert_eq!` assertion macros.
//!
//! Sampling is deterministic: each test function derives its RNG seed from
//! its own name and the case index, so failures reproduce exactly across
//! runs and machines. There is no shrinking — a failing case reports the
//! case index and the assertion message.

use std::fmt;

pub mod test_runner {
    /// Per-test configuration (only `cases` is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        pub cases: u32,
    }

    impl ProptestConfig {
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 32 }
        }
    }

    /// Failure payload produced by `prop_assert!`.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl TestCaseError {
        pub fn fail(msg: String) -> Self {
            TestCaseError(msg)
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }
}

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// The sampling source handed to strategies: a seeded [`StdRng`].
    pub struct SampleRng(pub StdRng);

    impl SampleRng {
        /// Deterministic per-(test, case) source.
        pub fn new(test_seed: u64, case: u32) -> Self {
            SampleRng(StdRng::seed_from_u64(
                test_seed ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ))
        }
    }

    /// A value generator. Unlike real proptest there is no value tree and
    /// no shrinking: `sample` draws one concrete value.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut SampleRng) -> Self::Value;
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut SampleRng) -> $t {
                    rng.0.gen_range(self.clone())
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn sample(&self, rng: &mut SampleRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);

    /// `Just`-style constant strategy, occasionally handy.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut SampleRng) -> T {
            self.0.clone()
        }
    }
}

pub mod collection {
    use super::strategy::{SampleRng, Strategy};
    use rand::Rng;

    /// Strategy producing `Vec`s with lengths drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut SampleRng) -> Vec<S::Value> {
            let len = rng.0.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// The `prop::` namespace used by `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

/// Stable (cross-run, cross-platform) FNV-1a hash of a test's name, used
/// as its sampling seed.
pub fn seed_of(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Helper for panic messages.
pub fn format_failure(test: &str, case: u32, err: impl fmt::Display) -> String {
    format!("proptest '{test}' failed at case {case}: {err}")
}

#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default())
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $cfg;
                let test_seed = $crate::seed_of(stringify!($name));
                for case in 0..config.cases {
                    let mut sample_rng = $crate::strategy::SampleRng::new(test_seed, case);
                    $(
                        let $arg = $crate::strategy::Strategy::sample(&($strat), &mut sample_rng);
                    )+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            #[allow(unreachable_code)]
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("{}", $crate::format_failure(stringify!($name), case, e));
                    }
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_sample_in_bounds(x in 0u64..100, y in -5i32..5, f in 0.0f64..1.0) {
            prop_assert!(x < 100);
            prop_assert!((-5..5).contains(&y));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_strategy_respects_len(v in prop::collection::vec((0.0f64..10.0, 1u32..4), 2..20)) {
            prop_assert!(v.len() >= 2 && v.len() < 20);
            for (f, u) in v {
                prop_assert!((0.0..10.0).contains(&f));
                prop_assert!((1..4).contains(&u));
            }
        }
    }

    #[test]
    fn early_ok_return_supported() {
        proptest! {
            #[test]
            fn inner(x in 0u32..10) {
                if x > 100 {
                    return Ok(());
                }
                prop_assert!(x < 10);
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            #[test]
            fn failing(x in 0u32..10) {
                prop_assert!(x > 100, "x is only {}", x);
            }
        }
        failing();
    }

    #[test]
    fn seeds_differ_by_name() {
        assert_ne!(crate::seed_of("a"), crate::seed_of("b"));
    }
}
