//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small slice of the rand 0.8 API it actually uses:
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng::seed_from_u64`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! `StdRng` here is xoshiro256++ seeded through SplitMix64. It is NOT the
//! upstream ChaCha-based `StdRng`; streams differ from real rand, but every
//! consumer in this repository only requires determinism for a fixed seed,
//! which this generator provides on every platform.

/// Low-level generator interface: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a single `u64` (the subset of
/// rand's `Standard` distribution the workspace uses).
pub trait Standard01 {
    fn from_u64(bits: u64) -> Self;
}

impl Standard01 for f64 {
    /// Uniform in [0, 1) with 53 bits of precision.
    fn from_u64(bits: u64) -> f64 {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard01 for f32 {
    fn from_u64(bits: u64) -> f32 {
        (bits >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard01 for bool {
    fn from_u64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

impl Standard01 for u64 {
    fn from_u64(bits: u64) -> u64 {
        bits
    }
}

impl Standard01 for u32 {
    fn from_u64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

/// Element types `gen_range` can sample uniformly.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges that can produce a uniform sample. The blanket impls tie the
/// output type to the range's element type, which is what lets inference
/// resolve `rng.gen_range(0.6..1.0)` without annotations (as real rand
/// does).
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "empty range in gen_range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        T::sample_inclusive(lo, hi, rng)
    }
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                (lo as i128 + (rng.next_u64() % span) as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let span = (hi as i128).wrapping_sub(lo as i128) as u64;
                if span == u64::MAX {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                (lo as i128 + (rng.next_u64() % (span + 1)) as i128) as $t
            }
        }
    )*};
}
int_uniform_impls!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                let u: $t = Standard01::from_u64(rng.next_u64());
                lo + (hi - lo) * u
            }
            fn sample_inclusive<R: RngCore + ?Sized>(lo: $t, hi: $t, rng: &mut R) -> $t {
                // Close enough to rand's inclusive float sampling for this
                // workspace: the top endpoint has measure zero anyway.
                Self::sample_half_open(lo, hi, rng)
            }
        }
    )*};
}
float_uniform_impls!(f32, f64);

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution (uniform [0,1) for
    /// floats).
    fn gen<T: Standard01>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform sample from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "gen_bool p out of range");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators (only the `seed_from_u64` entry point is needed).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via SplitMix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        // The sample kernels issue tens of millions of draws per second;
        // without the hint this stays an out-of-line cross-crate call.
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub mod seq {
    use super::{Rng, RngCore};

    /// Slice helpers: deterministic Fisher-Yates shuffle and choice.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        use super::RngCore;
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(2u32..=4);
            assert!((2..=4).contains(&w));
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = StdRng::seed_from_u64(5);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert!([1, 2, 3].choose(&mut rng).is_some());
    }
}
