//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! future interchange but never actually serializes through serde (CSV
//! export is hand-rolled in `bb-core::export`). With no network access to
//! crates.io, this crate supplies the marker traits and re-exports no-op
//! derive macros so those derives remain valid without pulling in the real
//! dependency tree.

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
