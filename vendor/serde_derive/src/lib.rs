//! No-op derive macros for the offline serde stand-in.
//!
//! The derives accept (and ignore) `#[serde(...)]` helper attributes so
//! annotated types keep compiling; they emit no impls because nothing in
//! the workspace serializes through serde.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
